#include "algos/clustering.h"

#include <algorithm>
#include <atomic>
#include <span>

#include "algos/intersect.h"
#include "algos/orientation.h"
#include "common/parallel.h"

namespace graphgen {

namespace {

/// Span fast path: enumerate each triangle once over a degree-ordered
/// orientation and credit all three corners, instead of re-intersecting
/// every neighbor pair from both sides. A vertex's closed ordered pair
/// count is exactly twice its triangle membership, so the coefficients
/// match the pairwise definition bit for bit.
std::vector<double> ClusteringSpan(const Graph& graph) {
  const size_t n = graph.NumVertices();
  const detail::OrientedCsr csr = detail::BuildOrientedCsr(graph);
  std::vector<uint64_t> tri(n, 0);
  ParallelForRanges(
      BalancedRanges(
          n,
          [&](size_t r) {
            return uint64_t{1} + csr.Out(static_cast<NodeId>(r)).size();
          }),
      [&](size_t begin, size_t end) {
        // Reused across this worker's roots; set/clear are O(degree).
        detail::NeighborBitmap bm(n);
        // Worker-local triangle tallies, merged once at the end: three
        // contended atomic adds per triangle would dominate the whole
        // kernel on triangle-dense graphs. Addition commutes, so the
        // merged counts are bit-identical to the shared-counter walk.
        std::vector<uint64_t> local(n, 0);
        for (size_t r = begin; r < end; ++r) {
          const std::span<const NodeId> nu = csr.Out(static_cast<NodeId>(r));
          const NodeId u = csr.order[r];
          const auto credit = [&](NodeId s, NodeId t) {
            ++local[u];
            ++local[csr.order[s]];
            ++local[csr.order[t]];
          };
          if (nu.size() >= detail::kBitmapMinDegree) {
            // High-degree root: flag nu once, then each wedge closes with
            // one bit test. Visits the same (s, t) pairs in the same
            // order as the sorted-list path.
            for (NodeId s : nu) bm.Set(s);
            for (NodeId s : nu) {
              detail::IntersectBitmapForEach(
                  bm, csr.Out(s), [&](NodeId t) { credit(s, t); });
            }
            bm.Clear(nu);
          } else {
            for (NodeId s : nu) {
              detail::IntersectSortedForEach(
                  nu, csr.Out(s), [&](NodeId t) { credit(s, t); });
            }
          }
        }
        for (size_t i = 0; i < n; ++i) {
          if (local[i] != 0) {
            std::atomic_ref<uint64_t>(tri[i]).fetch_add(
                local[i], std::memory_order_relaxed);
          }
        }
      });
  std::vector<double> out(n, 0.0);
  for (size_t u = 0; u < n; ++u) {
    const size_t d = graph.NeighborSpan(static_cast<NodeId>(u)).size();
    if (d < 2) continue;
    const double possible =
        static_cast<double>(d) * (static_cast<double>(d) - 1);
    out[u] = static_cast<double>(2 * tri[u]) / possible;
  }
  return out;
}

}  // namespace

std::vector<double> LocalClusteringCoefficients(const Graph& graph,
                                                TraversalPath path) {
  if (UseSpanPath(graph, path)) return ClusteringSpan(graph);

  const size_t n = graph.NumVertices();
  // Materialize sorted adjacency once; intersection by merge.
  std::vector<std::vector<NodeId>> adj(n);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      if (!graph.VertexExists(static_cast<NodeId>(u))) continue;
      graph.ForEachNeighbor(static_cast<NodeId>(u),
                            [&](NodeId v) { adj[u].push_back(v); });
      std::sort(adj[u].begin(), adj[u].end());
      adj[u].erase(std::unique(adj[u].begin(), adj[u].end()), adj[u].end());
    }
  });

  std::vector<double> out(n, 0.0);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      const auto& nu = adj[u];
      if (nu.size() < 2) continue;
      uint64_t closed = 0;
      for (NodeId v : nu) {
        const auto& nv = adj[v];
        size_t i = 0;
        size_t j = 0;
        while (i < nu.size() && j < nv.size()) {
          if (nu[i] < nv[j]) {
            ++i;
          } else if (nu[i] > nv[j]) {
            ++j;
          } else {
            ++closed;
            ++i;
            ++j;
          }
        }
      }
      const double possible =
          static_cast<double>(nu.size()) * (static_cast<double>(nu.size()) - 1);
      out[u] = static_cast<double>(closed) / possible;
    }
  });
  return out;
}

double AverageClusteringCoefficient(const Graph& graph, TraversalPath path) {
  std::vector<double> local = LocalClusteringCoefficients(graph, path);
  double sum = 0;
  size_t count = 0;
  graph.ForEachVertex([&](NodeId u) {
    if (graph.OutDegree(u) >= 2) {
      sum += local[u];
      ++count;
    }
  });
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace graphgen
