#include "algos/clustering.h"

#include <algorithm>

#include "common/parallel.h"

namespace graphgen {

std::vector<double> LocalClusteringCoefficients(const Graph& graph) {
  const size_t n = graph.NumVertices();
  // Materialize sorted adjacency once; intersection by merge.
  std::vector<std::vector<NodeId>> adj(n);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      if (!graph.VertexExists(static_cast<NodeId>(u))) continue;
      graph.ForEachNeighbor(static_cast<NodeId>(u),
                            [&](NodeId v) { adj[u].push_back(v); });
      std::sort(adj[u].begin(), adj[u].end());
      adj[u].erase(std::unique(adj[u].begin(), adj[u].end()), adj[u].end());
    }
  });

  std::vector<double> out(n, 0.0);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      const auto& nu = adj[u];
      if (nu.size() < 2) continue;
      uint64_t closed = 0;
      for (NodeId v : nu) {
        const auto& nv = adj[v];
        size_t i = 0;
        size_t j = 0;
        while (i < nu.size() && j < nv.size()) {
          if (nu[i] < nv[j]) {
            ++i;
          } else if (nu[i] > nv[j]) {
            ++j;
          } else {
            ++closed;
            ++i;
            ++j;
          }
        }
      }
      const double possible =
          static_cast<double>(nu.size()) * (static_cast<double>(nu.size()) - 1);
      out[u] = static_cast<double>(closed) / possible;
    }
  });
  return out;
}

double AverageClusteringCoefficient(const Graph& graph) {
  std::vector<double> local = LocalClusteringCoefficients(graph);
  double sum = 0;
  size_t count = 0;
  graph.ForEachVertex([&](NodeId u) {
    if (graph.OutDegree(u) >= 2) {
      sum += local[u];
      ++count;
    }
  });
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace graphgen
