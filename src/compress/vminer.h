#ifndef GRAPHGEN_COMPRESS_VMINER_H_
#define GRAPHGEN_COMPRESS_VMINER_H_

#include <cstdint>

#include "graph/storage.h"
#include "repr/expanded_graph.h"

namespace graphgen {

/// Parameters of the Virtual Node Miner baseline (Buehrer & Chellapilla,
/// WSDM'08), the prior graph-compression algorithm the paper compares
/// against in Fig. 10.
struct VMinerOptions {
  /// Passes over the graph; each pass mines one batch of bicliques.
  size_t passes = 4;
  /// Shingles per vertex used to group similar neighbor lists.
  size_t shingles = 2;
  /// Minimum |A| x |B| biclique size worth replacing (edges saved must be
  /// positive: |A|*|B| > |A| + |B|).
  size_t min_sources = 2;
  size_t min_targets = 2;
  uint64_t seed = 7;
};

struct VMinerResult {
  CondensedStorage storage;
  size_t bicliques_found = 0;
  uint64_t edges_before = 0;
  uint64_t edges_after = 0;
};

/// Compresses an *expanded* graph by repeatedly mining bicliques (groups
/// A, B with every a->b edge present) and replacing each with a virtual
/// node. Unlike GraphGen's extraction-time condensation, VMiner must
/// start from the fully expanded graph — the paper's key argument for
/// condensing during extraction instead (§6.1.1).
VMinerResult VMinerCompress(const ExpandedGraph& graph,
                            const VMinerOptions& options = {});

}  // namespace graphgen

#endif  // GRAPHGEN_COMPRESS_VMINER_H_
