#include "compress/vminer.h"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace graphgen {

namespace {

// One min-hash of a neighbor list under a splitmix-seeded hash function.
uint64_t MinHash(const std::vector<NodeId>& list, uint64_t salt) {
  uint64_t best = ~uint64_t{0};
  for (NodeId v : list) {
    uint64_t z = (static_cast<uint64_t>(v) + salt) * 0x9e3779b97f4a7c15ull;
    z ^= z >> 29;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 32;
    best = std::min(best, z);
  }
  return best;
}

}  // namespace

VMinerResult VMinerCompress(const ExpandedGraph& graph,
                            const VMinerOptions& options) {
  VMinerResult result;
  const size_t n = graph.NumVertices();

  // Mutable copy of the expanded adjacency (sorted).
  std::vector<std::vector<NodeId>> adj(n);
  for (size_t u = 0; u < n; ++u) {
    if (!graph.VertexExists(static_cast<NodeId>(u))) continue;
    std::span<const NodeId> raw = graph.RawNeighbors(static_cast<NodeId>(u));
    adj[u].assign(raw.begin(), raw.end());
  }
  for (const auto& l : adj) result.edges_before += l.size();

  // Virtual nodes mined so far: (sources, targets).
  std::vector<std::pair<std::vector<NodeId>, std::vector<NodeId>>> bicliques;

  Rng rng(options.seed);
  for (size_t pass = 0; pass < options.passes; ++pass) {
    // Group vertices by the tuple of `shingles` min-hashes of their
    // neighbor lists; fresh salts every pass explore different clusters.
    std::vector<uint64_t> salts(options.shingles);
    for (auto& s : salts) s = rng.Next();

    std::unordered_map<uint64_t, std::vector<NodeId>> clusters;
    for (size_t u = 0; u < n; ++u) {
      if (adj[u].size() < options.min_targets) continue;
      uint64_t key = 1469598103934665603ull;
      for (uint64_t salt : salts) {
        key ^= MinHash(adj[u], salt);
        key *= 1099511628211ull;
      }
      clusters[key].push_back(static_cast<NodeId>(u));
    }

    for (auto& [key, members] : clusters) {
      if (members.size() < options.min_sources) continue;
      // Greedy: grow the source set while the common neighbor set stays
      // useful.
      std::vector<NodeId> sources = {members[0]};
      std::vector<NodeId> common = adj[members[0]];
      for (size_t i = 1; i < members.size(); ++i) {
        std::vector<NodeId> next;
        std::set_intersection(common.begin(), common.end(),
                              adj[members[i]].begin(), adj[members[i]].end(),
                              std::back_inserter(next));
        if (next.size() < options.min_targets) continue;
        common = std::move(next);
        sources.push_back(members[i]);
      }
      if (sources.size() < options.min_sources ||
          common.size() < options.min_targets) {
        continue;
      }
      // Replace only when it actually saves edges.
      const size_t replaced = sources.size() * common.size();
      if (replaced <= sources.size() + common.size()) continue;
      for (NodeId a : sources) {
        std::vector<NodeId> rest;
        rest.reserve(adj[a].size() - common.size());
        std::set_difference(adj[a].begin(), adj[a].end(), common.begin(),
                            common.end(), std::back_inserter(rest));
        adj[a] = std::move(rest);
      }
      bicliques.emplace_back(std::move(sources), common);
    }
  }

  // Materialize the condensed result.
  CondensedStorage& s = result.storage;
  s.AddRealNodes(n);
  s.properties() = graph.properties();
  for (size_t ui = 0; ui < n; ++ui) {
    const NodeId u = static_cast<NodeId>(ui);
    if (!graph.VertexExists(u)) {
      s.DeleteRealNode(u);
      continue;
    }
    for (NodeId v : adj[u]) s.AddEdge(NodeRef::Real(u), NodeRef::Real(v));
  }
  for (const auto& [sources, targets] : bicliques) {
    uint32_t v = s.AddVirtualNode();
    for (NodeId a : sources) s.AddEdge(NodeRef::Real(a), NodeRef::Virtual(v));
    for (NodeId b : targets) s.AddEdge(NodeRef::Virtual(v), NodeRef::Real(b));
  }
  result.bicliques_found = bicliques.size();
  result.edges_after = s.CountCondensedEdges();
  return result;
}

}  // namespace graphgen
