#include "obs/profile.h"

#include <cstdio>

namespace graphgen::obs {

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatSeconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", s * 1e6);
  }
  return buf;
}

std::string FormatStat(double v) {
  char buf[48];
  // Counters arrive as exact integers; ratios (load factors) don't.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

void AppendText(const ProfileNode& node, int depth, std::string* out) {
  if (depth > 0) {
    out->append(static_cast<size_t>(3 * (depth - 1)), ' ');
    out->append("-> ");
  }
  *out += node.name;
  if (!node.detail.empty()) {
    *out += "  [";
    *out += node.detail;
    *out += "]";
  }
  *out += "  ";
  *out += FormatSeconds(node.seconds);
  if (node.rows >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "  rows=%lld",
                  static_cast<long long>(node.rows));
    *out += buf;
  }
  for (const auto& [key, value] : node.stats) {
    *out += "  ";
    *out += key;
    *out += "=";
    *out += FormatStat(value);
  }
  for (const auto& [key, value] : node.notes) {
    *out += "  ";
    *out += key;
    *out += "=";
    *out += value;
  }
  *out += "\n";
  for (const ProfileNode& child : node.children) {
    AppendText(child, depth + 1, out);
  }
}

void AppendJson(const ProfileNode& node, std::string* out) {
  char buf[64];
  *out += "{\"name\": ";
  AppendJsonString(out, node.name);
  if (!node.detail.empty()) {
    *out += ", \"detail\": ";
    AppendJsonString(out, node.detail);
  }
  std::snprintf(buf, sizeof(buf), ", \"seconds\": %.6f", node.seconds);
  *out += buf;
  if (node.rows >= 0) {
    std::snprintf(buf, sizeof(buf), ", \"rows\": %lld",
                  static_cast<long long>(node.rows));
    *out += buf;
  }
  if (!node.stats.empty()) {
    *out += ", \"stats\": {";
    bool first = true;
    for (const auto& [key, value] : node.stats) {
      if (!first) *out += ", ";
      first = false;
      AppendJsonString(out, key);
      *out += ": ";
      *out += FormatStat(value);
    }
    *out += "}";
  }
  if (!node.notes.empty()) {
    *out += ", \"notes\": {";
    bool first = true;
    for (const auto& [key, value] : node.notes) {
      if (!first) *out += ", ";
      first = false;
      AppendJsonString(out, key);
      *out += ": ";
      AppendJsonString(out, value);
    }
    *out += "}";
  }
  if (!node.children.empty()) {
    *out += ", \"children\": [";
    bool first = true;
    for (const ProfileNode& child : node.children) {
      if (!first) *out += ", ";
      first = false;
      AppendJson(child, out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

double ProfileNode::ChildSeconds() const {
  double total = 0.0;
  for (const ProfileNode& child : children) total += child.seconds;
  return total;
}

std::string QueryProfile::ToText() const {
  std::string out = root.name;
  out += "  (wall ";
  out += FormatSeconds(wall_seconds);
  out += ")\n";
  for (const ProfileNode& child : root.children) {
    AppendText(child, 1, &out);
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"query\": ";
  AppendJsonString(&out, query);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"wall_seconds\": %.6f", wall_seconds);
  out += buf;
  out += ", \"root\": ";
  AppendJson(root, &out);
  out += "}";
  return out;
}

}  // namespace graphgen::obs
