#ifndef GRAPHGEN_OBS_PROFILE_H_
#define GRAPHGEN_OBS_PROFILE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"

namespace graphgen::obs {

/// One stage/operator in an extraction's EXPLAIN ANALYZE tree: a name
/// ("hash_join", "nodes", ...), an optional human detail line (the SQL,
/// the rule head), elapsed seconds, an output cardinality, plus free-form
/// numeric stats ("build_rows", "load_factor") and string notes
/// ("fused" -> "yes").
///
/// Children live in a std::deque so AddChild never invalidates pointers
/// to existing siblings — the extractor pre-creates one child per query
/// plan and hands each worker thread a stable ProfileNode* to fill while
/// other plans are still being appended to elsewhere in the tree.
struct ProfileNode {
  std::string name;
  std::string detail;
  double seconds = 0.0;
  /// Output cardinality; -1 = not applicable / not recorded.
  int64_t rows = -1;
  std::vector<std::pair<std::string, double>> stats;
  std::vector<std::pair<std::string, std::string>> notes;
  std::deque<ProfileNode> children;

  ProfileNode() = default;
  explicit ProfileNode(std::string_view n, std::string_view d = {})
      : name(n), detail(d) {}

  ProfileNode* AddChild(std::string_view n, std::string_view d = {}) {
    children.emplace_back(n, d);
    return &children.back();
  }
  void AddStat(std::string_view key, double value) {
    stats.emplace_back(std::string(key), value);
  }
  void AddNote(std::string_view key, std::string_view value) {
    notes.emplace_back(std::string(key), std::string(value));
  }

  /// Sum of seconds over the direct children.
  double ChildSeconds() const;
};

/// The flight record of one extraction: the Datalog query, end-to-end wall
/// time, and the stage tree. Produced by GraphGen::Extract (via the
/// planner/executor), rendered by the shell's `profile` command, exported
/// by graphgen_cli --profile, retained by the service's slow-request log.
struct QueryProfile {
  std::string query;
  double wall_seconds = 0.0;
  ProfileNode root{"extract"};

  bool empty() const { return root.children.empty(); }

  /// EXPLAIN ANALYZE-style indented tree, e.g.
  ///   extract  (wall 41.3ms)
  ///   -> nodes  10.1ms
  ///      -> rule Author(id, name)  9.8ms  rows=4000
  std::string ToText() const;
  /// Machine-readable form; round-trips everything ToText shows.
  std::string ToJson() const;
};

/// RAII span: adds the elapsed wall time to `node->seconds` on scope exit.
/// Null node (or observability disabled at construction) makes the whole
/// span a no-op, so call sites stay unconditional.
class Span {
 public:
  explicit Span(ProfileNode* node) : node_(Enabled() ? node : nullptr) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (node_ != nullptr) node_->seconds += timer_.Seconds();
  }

 private:
  ProfileNode* node_;
  WallTimer timer_;
};

}  // namespace graphgen::obs

#endif  // GRAPHGEN_OBS_PROFILE_H_
