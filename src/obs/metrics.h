#ifndef GRAPHGEN_OBS_METRICS_H_
#define GRAPHGEN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "common/timer.h"

namespace graphgen::obs {

/// Global observability switch. Counters always record (they back
/// correctness-relevant accounting like ServiceStats); histograms and
/// trace spans honor this flag, so GRAPHGEN_OBS_OFF=1 (or
/// SetEnabled(false)) turns the *instrumentation* — span bookkeeping,
/// latency histograms, profile trees — into no-ops. The bench overhead
/// gate measures exactly that delta.
bool Enabled();
void SetEnabled(bool on);

/// Monotonic counter with per-thread-sharded accumulation: Add() is one
/// relaxed atomic add on the calling thread's home shard (no contention
/// between workers bumping the same metric), Value() merges the shards.
/// Near-zero cost when nobody reads — there is no read-side coordination
/// to pay for on the write path.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[HomeShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Merged total across shards (racy-by-nature point-in-time read).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  static constexpr size_t kShards = 16;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  static size_t HomeShard();

  Shard shards_[kShards];
};

/// Point-in-time signed value (resident bytes, queue depth, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-scale (power-of-two bucket) histogram over a non-negative integer
/// domain — latencies are recorded in microseconds. Sharded like Counter;
/// Record() is a handful of relaxed adds on one shard, merging happens on
/// read. Honors Enabled(): recording is a no-op when observability is off.
class Histogram : public DurationSink {
 public:
  /// Bucket b holds values v with bit_width(v) == b, i.e. [2^(b-1), 2^b).
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value);
  /// DurationSink: records seconds as whole microseconds.
  void RecordSeconds(double seconds) override {
    if (seconds < 0) return;
    Record(static_cast<uint64_t>(seconds * 1e6));
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t buckets[kBuckets] = {};

    double Mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
    /// Upper bucket bound below which at least `p` (0..1) of recorded
    /// values fall — log2-quantized, an estimate not an exact order
    /// statistic.
    uint64_t Percentile(double p) const;
  };

  Snapshot Snap() const;

 private:
  static constexpr size_t kShards = 4;
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };

  Shard shards_[kShards];
};

/// One row of MetricsRegistry::Snapshot().
struct MetricValue {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;
  Type type = Type::kCounter;
  uint64_t counter = 0;       // kCounter
  int64_t gauge = 0;          // kGauge
  Histogram::Snapshot hist;   // kHistogram
};

/// Name → metric registry. Get*() registers on first use and returns a
/// stable pointer (callers cache it; lookups take a mutex, recording does
/// not). Snapshot() merges every metric in one pass, so a consumer reads
/// one consistent view instead of racing field-by-field getters.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// All metrics, sorted by name, read in one pass.
  std::vector<MetricValue> Snapshot() const;

  /// Machine-readable dump: {"name": {"type": ..., "value": ...}, ...}.
  std::string ToJson() const;

  /// Process-wide registry used by the engine layers (executor, CSR
  /// builds); services own their own instance on top of this.
  static MetricsRegistry& Global();

 private:
  mutable Mutex mu_;
  /// The maps are guarded; the Counter/Gauge/Histogram objects they own
  /// are not (deliberately — recording is lock-free on sharded atomics and
  /// the unique_ptrs give each metric a stable address for cached
  /// pointers, so entries are never removed or reallocated).
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

/// Renders a registry snapshot as aligned "name value" text lines (the
/// shell `stats` dump). Histograms render count/mean/p50/p99.
std::string FormatSnapshot(const std::vector<MetricValue>& snapshot);

}  // namespace graphgen::obs

#endif  // GRAPHGEN_OBS_METRICS_H_
