#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace graphgen::obs {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("GRAPHGEN_OBS_OFF");
  return !(env != nullptr && env[0] != '\0' && env[0] != '0');
}()};

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

size_t Counter::HomeShard() {
  // One hash per thread lifetime; thread_local beats re-hashing the id on
  // every Add.
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      Counter::kShards;
  return shard;
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) return;
  static thread_local const size_t home =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  Shard& s = shards_[home];
  const size_t bucket = static_cast<size_t>(std::bit_width(value));
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  s.buckets[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(p * static_cast<double>(count) + 0.5);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) {
      // Upper bound of bucket b: values v with bit_width(v) == b, so
      // v < 2^b (bucket 0 is exactly {0}).
      return b == 0 ? 0 : (uint64_t{1} << b) - 1;
    }
  }
  return ~uint64_t{0};
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::vector<MetricValue> MetricsRegistry::Snapshot() const {
  std::vector<MetricValue> out;
  {
    MutexLock lock(mu_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) {
      MetricValue v;
      v.name = name;
      v.type = MetricValue::Type::kCounter;
      v.counter = c->Value();
      out.push_back(std::move(v));
    }
    for (const auto& [name, g] : gauges_) {
      MetricValue v;
      v.name = name;
      v.type = MetricValue::Type::kGauge;
      v.gauge = g->Value();
      out.push_back(std::move(v));
    }
    for (const auto& [name, h] : histograms_) {
      MetricValue v;
      v.name = name;
      v.type = MetricValue::Type::kHistogram;
      v.hist = h->Snap();
      out.push_back(std::move(v));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricValue> snap = Snapshot();
  std::string out = "{";
  bool first = true;
  char buf[160];
  for (const MetricValue& m : snap) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, m.name);
    switch (m.type) {
      case MetricValue::Type::kCounter:
        std::snprintf(buf, sizeof(buf),
                      ": {\"type\": \"counter\", \"value\": %llu}",
                      static_cast<unsigned long long>(m.counter));
        out += buf;
        break;
      case MetricValue::Type::kGauge:
        std::snprintf(buf, sizeof(buf),
                      ": {\"type\": \"gauge\", \"value\": %lld}",
                      static_cast<long long>(m.gauge));
        out += buf;
        break;
      case MetricValue::Type::kHistogram:
        std::snprintf(buf, sizeof(buf),
                      ": {\"type\": \"histogram\", \"count\": %llu, "
                      "\"sum\": %llu, \"mean\": %.3f, \"p50\": %llu, "
                      "\"p99\": %llu}",
                      static_cast<unsigned long long>(m.hist.count),
                      static_cast<unsigned long long>(m.hist.sum),
                      m.hist.Mean(),
                      static_cast<unsigned long long>(m.hist.Percentile(0.5)),
                      static_cast<unsigned long long>(m.hist.Percentile(0.99)));
        out += buf;
        break;
    }
  }
  out += "}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string FormatSnapshot(const std::vector<MetricValue>& snapshot) {
  size_t width = 0;
  for (const MetricValue& m : snapshot) width = std::max(width, m.name.size());
  std::string out;
  char buf[224];
  for (const MetricValue& m : snapshot) {
    switch (m.type) {
      case MetricValue::Type::kCounter:
        std::snprintf(buf, sizeof(buf), "  %-*s %llu\n",
                      static_cast<int>(width), m.name.c_str(),
                      static_cast<unsigned long long>(m.counter));
        break;
      case MetricValue::Type::kGauge:
        std::snprintf(buf, sizeof(buf), "  %-*s %lld\n",
                      static_cast<int>(width), m.name.c_str(),
                      static_cast<long long>(m.gauge));
        break;
      case MetricValue::Type::kHistogram:
        std::snprintf(
            buf, sizeof(buf),
            "  %-*s count=%llu mean=%.1fus p50<=%lluus p99<=%lluus\n",
            static_cast<int>(width), m.name.c_str(),
            static_cast<unsigned long long>(m.hist.count), m.hist.Mean(),
            static_cast<unsigned long long>(m.hist.Percentile(0.5)),
            static_cast<unsigned long long>(m.hist.Percentile(0.99)));
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace graphgen::obs
