#ifndef GRAPHGEN_REPR_EXPANDER_H_
#define GRAPHGEN_REPR_EXPANDER_H_

#include "graph/storage.h"
#include "repr/expanded_graph.h"

namespace graphgen {

/// Materializes the fully expanded graph (EXP) from a condensed graph:
/// for every real node, all distinct reachable real targets become direct
/// edges and the virtual nodes are dropped. This is the step the paper's
/// condensed representations exist to avoid; it is provided both as the
/// evaluation baseline and for the "expand if the increase is small"
/// policy of §4.2 Step 6 / §6.5.
ExpandedGraph ExpandCondensed(const CondensedStorage& storage);

}  // namespace graphgen

#endif  // GRAPHGEN_REPR_EXPANDER_H_
