#include "repr/cdup_graph.h"

#include <unordered_set>
#include <vector>

namespace graphgen {

namespace {

/// DFS-based lazy iterator over the condensed structure that skips
/// duplicate real targets using a hash set (C-DUP getNeighbors, §4.3).
class CDupNeighborIterator : public NeighborIterator {
 public:
  CDupNeighborIterator(const CondensedStorage* storage, NodeId u)
      : storage_(storage), u_(u) {
    if (u < storage_->NumRealNodes() && !storage_->IsDeleted(u)) {
      const auto& out = storage_->OutEdges(NodeRef::Real(u));
      stack_.assign(out.begin(), out.end());
    }
    AdvanceToNext();
  }

  bool HasNext() override { return has_next_; }

  NodeId Next() override {
    NodeId result = next_;
    AdvanceToNext();
    return result;
  }

 private:
  void AdvanceToNext() {
    has_next_ = false;
    while (!stack_.empty()) {
      NodeRef r = stack_.back();
      stack_.pop_back();
      if (r.is_real()) {
        NodeId v = r.index();
        if (v == u_ || storage_->IsDeleted(v) || !seen_.insert(v).second) continue;
        next_ = v;
        has_next_ = true;
        return;
      }
      const auto& out = storage_->OutEdges(r);
      stack_.insert(stack_.end(), out.begin(), out.end());
    }
  }

  const CondensedStorage* storage_;
  NodeId u_;
  std::vector<NodeRef> stack_;
  std::unordered_set<NodeId> seen_;
  NodeId next_ = kInvalidNode;
  bool has_next_ = false;
};

}  // namespace

std::unique_ptr<NeighborIterator> CDupGraph::Neighbors(NodeId u) const {
  return std::make_unique<CDupNeighborIterator>(&storage_, u);
}

bool CDupGraph::ExistsEdge(NodeId u, NodeId v) const {
  if (!VertexExists(u) || !VertexExists(v) || u == v) return false;
  // DFS from u_s, terminating as soon as v_t is reached. Virtual nodes are
  // marked visited so shared substructure is not re-explored.
  std::vector<NodeRef> stack;
  std::unordered_set<uint32_t> visited_virtual;
  const auto& out = storage_.OutEdges(NodeRef::Real(u));
  stack.assign(out.begin(), out.end());
  while (!stack.empty()) {
    NodeRef r = stack.back();
    stack.pop_back();
    if (r.is_real()) {
      if (r.index() == v) return true;
      continue;
    }
    if (!visited_virtual.insert(r.index()).second) continue;
    const auto& vout = storage_.OutEdges(r);
    stack.insert(stack.end(), vout.begin(), vout.end());
  }
  return false;
}

Status CDupGraph::AddEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("AddEdge endpoint does not exist");
  }
  if (ExistsEdge(u, v)) return Status::OK();
  storage_.AddEdge(NodeRef::Real(u), NodeRef::Real(v));
  return Status::OK();
}

Status CDupGraph::DeleteEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("DeleteEdge endpoint does not exist");
  }
  if (!ExistsEdge(u, v)) {
    return Status::NotFound("edge does not exist");
  }
  // Remove any direct u_s -> v_t edges.
  while (storage_.RemoveEdge(NodeRef::Real(u), NodeRef::Real(v))) {
  }
  if (!ExistsEdge(u, v)) return Status::OK();
  // Paths through virtual nodes remain: the logical-edge deletion of §4.3
  // detaches u_s from its virtual out-neighbors and compensates with
  // direct edges to every other expanded neighbor.
  std::vector<NodeId> neighbors = storage_.ExpandedNeighbors(u);
  std::vector<NodeRef> out_copy = storage_.OutEdges(NodeRef::Real(u));
  for (NodeRef r : out_copy) {
    if (r.is_virtual()) storage_.RemoveEdge(NodeRef::Real(u), r);
  }
  // Direct real edges that survived are still intact; avoid duplicating
  // them when re-adding.
  std::unordered_set<NodeId> direct;
  for (NodeRef r : storage_.OutEdges(NodeRef::Real(u))) {
    if (r.is_real()) direct.insert(r.index());
  }
  for (NodeId w : neighbors) {
    if (w == v || direct.contains(w)) continue;
    storage_.AddEdge(NodeRef::Real(u), NodeRef::Real(w));
  }
  return Status::OK();
}

Status CDupGraph::DeleteVertex(NodeId v) {
  if (!VertexExists(v)) {
    return Status::NotFound("vertex does not exist");
  }
  storage_.DeleteRealNode(v);
  return Status::OK();
}

}  // namespace graphgen
