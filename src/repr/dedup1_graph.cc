#include "repr/dedup1_graph.h"

#include <unordered_set>
#include <vector>

namespace graphgen {

namespace {

/// Lazy DFS iterator without a seen-set (valid because DEDUP-1 graphs are
/// duplication-free).
class Dedup1NeighborIterator : public NeighborIterator {
 public:
  Dedup1NeighborIterator(const CondensedStorage* storage, NodeId u)
      : storage_(storage), u_(u) {
    if (u < storage_->NumRealNodes() && !storage_->IsDeleted(u)) {
      const auto& out = storage_->OutEdges(NodeRef::Real(u));
      stack_.assign(out.begin(), out.end());
    }
    AdvanceToNext();
  }

  bool HasNext() override { return has_next_; }
  NodeId Next() override {
    NodeId result = next_;
    AdvanceToNext();
    return result;
  }

 private:
  void AdvanceToNext() {
    has_next_ = false;
    while (!stack_.empty()) {
      NodeRef r = stack_.back();
      stack_.pop_back();
      if (r.is_real()) {
        if (r.index() == u_ || storage_->IsDeleted(r.index())) continue;
        next_ = r.index();
        has_next_ = true;
        return;
      }
      const auto& out = storage_->OutEdges(r);
      stack_.insert(stack_.end(), out.begin(), out.end());
    }
  }

  const CondensedStorage* storage_;
  NodeId u_;
  std::vector<NodeRef> stack_;
  NodeId next_ = kInvalidNode;
  bool has_next_ = false;
};

}  // namespace

std::unique_ptr<NeighborIterator> Dedup1Graph::Neighbors(NodeId u) const {
  return std::make_unique<Dedup1NeighborIterator>(&storage_, u);
}

bool Dedup1Graph::ExistsEdge(NodeId u, NodeId v) const {
  if (!VertexExists(u) || !VertexExists(v) || u == v) return false;
  std::vector<NodeRef> stack;
  const auto& out = storage_.OutEdges(NodeRef::Real(u));
  stack.assign(out.begin(), out.end());
  while (!stack.empty()) {
    NodeRef r = stack.back();
    stack.pop_back();
    if (r.is_real()) {
      if (r.index() == v) return true;
      continue;
    }
    const auto& vout = storage_.OutEdges(r);
    stack.insert(stack.end(), vout.begin(), vout.end());
  }
  return false;
}

Status Dedup1Graph::AddEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("AddEdge endpoint does not exist");
  }
  // Maintain the single-path invariant: only add when absent.
  if (ExistsEdge(u, v)) return Status::OK();
  storage_.AddEdge(NodeRef::Real(u), NodeRef::Real(v));
  return Status::OK();
}

Status Dedup1Graph::DeleteEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("DeleteEdge endpoint does not exist");
  }
  if (storage_.RemoveEdge(NodeRef::Real(u), NodeRef::Real(v))) {
    return Status::OK();  // was a direct edge
  }
  if (!ExistsEdge(u, v)) {
    return Status::NotFound("edge does not exist");
  }
  // The unique path runs through virtual nodes: detach u_s from its
  // virtual out-edges and compensate with direct edges (cheaper schemes
  // exist for single-layer graphs, but this is correct for all shapes).
  std::vector<NodeId> neighbors = storage_.ExpandedNeighbors(u);
  std::vector<NodeRef> out_copy = storage_.OutEdges(NodeRef::Real(u));
  for (NodeRef r : out_copy) {
    if (r.is_virtual()) storage_.RemoveEdge(NodeRef::Real(u), r);
  }
  std::unordered_set<NodeId> direct;
  for (NodeRef r : storage_.OutEdges(NodeRef::Real(u))) {
    if (r.is_real()) direct.insert(r.index());
  }
  for (NodeId w : neighbors) {
    if (w == v || direct.contains(w)) continue;
    storage_.AddEdge(NodeRef::Real(u), NodeRef::Real(w));
  }
  return Status::OK();
}

Status Dedup1Graph::DeleteVertex(NodeId v) {
  if (!VertexExists(v)) {
    return Status::NotFound("vertex does not exist");
  }
  storage_.DeleteRealNode(v);
  return Status::OK();
}

}  // namespace graphgen
