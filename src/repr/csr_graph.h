#ifndef GRAPHGEN_REPR_CSR_GRAPH_H_
#define GRAPHGEN_REPR_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace graphgen {

/// CSR: an immutable flat-adjacency snapshot of any Graph's *expanded*
/// view. This is the materialized adapter behind the NeighborSpan fast
/// path: a condensed representation (C-DUP, DEDUP-1/2, BITMAP) keeps its
/// compact storage, and when an analyst is about to run several
/// traversal-heavy kernels, one Build() pays the full expansion once and
/// every subsequent kernel runs devirtualized over two contiguous arrays.
///
/// Build cost is a single ForEachNeighbor sweep (the same price as one
/// function-path kernel pass) plus a per-range sort; the footprint is
/// 4 bytes per edge + 8 bytes per vertex. The snapshot reflects the source
/// graph at build time — live vertices, live targets — and is immutable:
/// the §3.4 mutation operations return kUnsupported. Mutate the
/// source representation and rebuild instead.
class CsrGraph : public Graph {
 public:
  /// Snapshots `g`'s expanded view. Thread-safe with respect to concurrent
  /// readers of `g` (only const methods are called).
  static CsrGraph Build(const Graph& g, size_t threads = 0);

  std::string_view Name() const override { return "CSR"; }

  size_t NumVertices() const override { return exists_.size(); }
  size_t NumActiveVertices() const override { return num_active_; }
  bool VertexExists(NodeId v) const override {
    return v < exists_.size() && exists_[v];
  }

  void ForEachNeighbor(NodeId u,
                       const std::function<void(NodeId)>& fn) const override {
    if (!VertexExists(u)) return;
    for (NodeId v : Slice(u)) fn(v);
  }

  size_t OutDegree(NodeId u) const override {
    return VertexExists(u) ? Slice(u).size() : 0;
  }

  bool HasFlatAdjacency() const override { return true; }
  std::span<const NodeId> NeighborSpan(NodeId u) const override {
    return Slice(u);
  }

  bool ExistsEdge(NodeId u, NodeId v) const override;

  // Immutable snapshot: the mutation API is rejected wholesale.
  Status AddEdge(NodeId u, NodeId v) override;
  Status DeleteEdge(NodeId u, NodeId v) override;
  NodeId AddVertex() override { return kInvalidNode; }
  Status DeleteVertex(NodeId v) override;

  uint64_t CountStoredEdges() const override { return neighbors_.size(); }
  size_t NumVirtualNodes() const override { return 0; }
  GraphFootprint MemoryFootprint() const override;

 private:
  CsrGraph() = default;

  std::span<const NodeId> Slice(NodeId u) const {
    const uint64_t begin = offsets_[u];
    const uint64_t end = offsets_[u + 1];
    return {neighbors_.data() + begin, static_cast<size_t>(end - begin)};
  }

  std::vector<uint64_t> offsets_{0};  // NumVertices() + 1 entries
  std::vector<NodeId> neighbors_;    // sorted per range
  std::vector<uint8_t> exists_;
  size_t num_active_ = 0;
};

}  // namespace graphgen

#endif  // GRAPHGEN_REPR_CSR_GRAPH_H_
