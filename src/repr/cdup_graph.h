#ifndef GRAPHGEN_REPR_CDUP_GRAPH_H_
#define GRAPHGEN_REPR_CDUP_GRAPH_H_

#include <memory>
#include <utility>

#include "graph/graph.h"
#include "graph/storage.h"

namespace graphgen {

/// C-DUP: the condensed *duplicated* representation extracted directly
/// from the database (§4.3). getNeighbors performs a depth-first traversal
/// through the virtual nodes and deduplicates on the fly with a hash set —
/// the cheapest representation to build, with the highest per-iteration
/// cost.
class CDupGraph : public Graph {
 public:
  explicit CDupGraph(CondensedStorage storage)
      : storage_(std::move(storage)) {}

  std::string_view Name() const override { return "C-DUP"; }

  size_t NumVertices() const override { return storage_.NumRealNodes(); }
  size_t NumActiveVertices() const override {
    return storage_.NumActiveRealNodes();
  }
  bool VertexExists(NodeId v) const override {
    return v < storage_.NumRealNodes() && !storage_.IsDeleted(v);
  }

  void ForEachNeighbor(NodeId u,
                       const std::function<void(NodeId)>& fn) const override {
    storage_.ForEachExpandedNeighbor(u, fn);
  }

  /// Lazy DFS iterator with on-the-fly hash-set dedup (the representation-
  /// defining operation of C-DUP).
  std::unique_ptr<NeighborIterator> Neighbors(NodeId u) const override;

  bool ExistsEdge(NodeId u, NodeId v) const override;
  Status AddEdge(NodeId u, NodeId v) override;
  Status DeleteEdge(NodeId u, NodeId v) override;
  NodeId AddVertex() override { return storage_.AddRealNode(); }
  Status DeleteVertex(NodeId v) override;

  uint64_t CountStoredEdges() const override {
    return storage_.CountCondensedEdges();
  }
  size_t NumVirtualNodes() const override {
    return storage_.NumVirtualNodes();
  }
  GraphFootprint MemoryFootprint() const override {
    return {storage_.MemoryBytes(), storage_.properties().MemoryBytes(), 0};
  }

  const CondensedStorage& storage() const { return storage_; }
  CondensedStorage& mutable_storage() { return storage_; }

 protected:
  CondensedStorage storage_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_REPR_CDUP_GRAPH_H_
