#include "repr/dedup2_graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/memory.h"

namespace graphgen {

void Dedup2Graph::ForEachNeighbor(
    NodeId u, const std::function<void(NodeId)>& fn) const {
  if (!VertexExists(u)) return;
  for (uint32_t v : membership_[u]) {
    for (NodeId x : members_[v]) {
      if (x != u && !deleted_[x]) fn(x);
    }
    for (uint32_t w : vadj_[v]) {
      for (NodeId y : members_[w]) {
        if (y != u && !deleted_[y]) fn(y);
      }
    }
  }
}

bool Dedup2Graph::ExistsEdge(NodeId u, NodeId v) const {
  if (!VertexExists(u) || !VertexExists(v) || u == v) return false;
  for (uint32_t vn : membership_[u]) {
    const auto& mem = members_[vn];
    if (std::find(mem.begin(), mem.end(), v) != mem.end()) return true;
    for (uint32_t w : vadj_[vn]) {
      const auto& wm = members_[w];
      if (std::find(wm.begin(), wm.end(), v) != wm.end()) return true;
    }
  }
  return false;
}

Status Dedup2Graph::AddEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("AddEdge endpoint does not exist");
  }
  if (u == v) return Status::InvalidArgument("self edges are not supported");
  if (ExistsEdge(u, v)) return Status::OK();
  // A pair virtual node implements a direct undirected edge without
  // violating either invariant.
  AddVirtualNode({u, v});
  return Status::OK();
}

Status Dedup2Graph::DeleteEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("DeleteEdge endpoint does not exist");
  }
  // Find the unique virtual node V through which u reaches v.
  uint32_t via = 0xFFFFFFFFu;
  for (uint32_t vn : membership_[u]) {
    const auto& mem = members_[vn];
    if (std::find(mem.begin(), mem.end(), v) != mem.end()) {
      via = vn;
      break;
    }
    for (uint32_t w : vadj_[vn]) {
      const auto& wm = members_[w];
      if (std::find(wm.begin(), wm.end(), v) != wm.end()) {
        via = vn;
        break;
      }
    }
    if (via != 0xFFFFFFFFu) break;
  }
  if (via == 0xFFFFFFFFu) return Status::NotFound("edge does not exist");

  // Collect everything u could reach through `via`, detach u from it, and
  // compensate with pair virtual nodes for all lost neighbors except v.
  std::unordered_set<NodeId> lost;
  for (NodeId x : members_[via]) {
    if (x != u) lost.insert(x);
  }
  for (uint32_t w : vadj_[via]) {
    for (NodeId y : members_[w]) lost.insert(y);
  }
  DetachMember(via, u);
  for (NodeId x : lost) {
    if (x == v || x == u || deleted_[x]) continue;
    GRAPHGEN_RETURN_NOT_OK(AddEdge(u, x));
  }
  return Status::OK();
}

NodeId Dedup2Graph::AddVertex() {
  membership_.emplace_back();
  deleted_.push_back(0);
  return static_cast<NodeId>(membership_.size() - 1);
}

Status Dedup2Graph::DeleteVertex(NodeId v) {
  if (!VertexExists(v)) {
    return Status::NotFound("vertex does not exist");
  }
  deleted_[v] = 1;
  ++num_deleted_;
  return Status::OK();
}

uint64_t Dedup2Graph::CountStoredEdges() const {
  // Undirected edge count: real-virtual membership edges plus
  // virtual-virtual edges (stored twice in vadj_).
  uint64_t membership_edges = 0;
  for (const auto& m : members_) membership_edges += m.size();
  uint64_t vv = 0;
  for (const auto& a : vadj_) vv += a.size();
  return membership_edges + vv / 2;
}

GraphFootprint Dedup2Graph::MemoryFootprint() const {
  return {NestedVectorBytes(membership_) + NestedVectorBytes(members_) +
              NestedVectorBytes(vadj_) + VectorBytes(deleted_),
          properties_.MemoryBytes(), 0};
}

uint32_t Dedup2Graph::AddVirtualNode(std::vector<NodeId> members) {
  uint32_t id = static_cast<uint32_t>(members_.size());
  for (NodeId u : members) membership_[u].push_back(id);
  members_.push_back(std::move(members));
  vadj_.emplace_back();
  return id;
}

void Dedup2Graph::AddVirtualEdge(uint32_t v, uint32_t w) {
  vadj_[v].push_back(w);
  vadj_[w].push_back(v);
}

void Dedup2Graph::RemoveVirtualEdge(uint32_t v, uint32_t w) {
  auto& av = vadj_[v];
  auto it = std::find(av.begin(), av.end(), w);
  if (it != av.end()) av.erase(it);
  auto& aw = vadj_[w];
  auto it2 = std::find(aw.begin(), aw.end(), v);
  if (it2 != aw.end()) aw.erase(it2);
}

void Dedup2Graph::DetachMember(uint32_t v, NodeId u) {
  auto& mem = members_[v];
  auto it = std::find(mem.begin(), mem.end(), u);
  if (it != mem.end()) mem.erase(it);
  auto& ms = membership_[u];
  auto it2 = std::find(ms.begin(), ms.end(), v);
  if (it2 != ms.end()) ms.erase(it2);
}

}  // namespace graphgen
