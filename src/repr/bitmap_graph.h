#ifndef GRAPHGEN_REPR_BITMAP_GRAPH_H_
#define GRAPHGEN_REPR_BITMAP_GRAPH_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitmap.h"
#include "graph/graph.h"
#include "graph/storage.h"

namespace graphgen {

/// BITMAP: the condensed structure of C-DUP augmented with per-virtual-node
/// bitmaps (§4.3). A virtual node V may hold a bitmap for a source real
/// node u, sized |out(V)|; during a traversal that started at u_s, bit i
/// tells whether out-edge i of V may be followed. The bitmaps are set by
/// the BITMAP-1 / BITMAP-2 preprocessing algorithms (§5.1) so that every
/// real target is reached exactly once — getNeighbors needs no hash set.
///
/// A (u, V) pair with no bitmap is traversed unrestricted; the
/// preprocessing algorithms install bitmaps for every reachable pair, so
/// this fallback only fires for edges added after preprocessing.
class BitmapGraph : public Graph {
 public:
  explicit BitmapGraph(CondensedStorage storage)
      : storage_(std::move(storage)),
        bitmaps_(storage_.NumVirtualNodes()) {}

  std::string_view Name() const override { return "BITMAP"; }

  size_t NumVertices() const override { return storage_.NumRealNodes(); }
  size_t NumActiveVertices() const override {
    return storage_.NumActiveRealNodes();
  }
  bool VertexExists(NodeId v) const override {
    return v < storage_.NumRealNodes() && !storage_.IsDeleted(v);
  }

  void ForEachNeighbor(NodeId u,
                       const std::function<void(NodeId)>& fn) const override;

  bool ExistsEdge(NodeId u, NodeId v) const override;
  Status AddEdge(NodeId u, NodeId v) override;
  Status DeleteEdge(NodeId u, NodeId v) override;
  NodeId AddVertex() override { return storage_.AddRealNode(); }
  Status DeleteVertex(NodeId v) override;

  uint64_t CountStoredEdges() const override {
    return storage_.CountCondensedEdges();
  }
  size_t NumVirtualNodes() const override {
    return storage_.NumVirtualNodes();
  }
  GraphFootprint MemoryFootprint() const override {
    return {storage_.MemoryBytes(), storage_.properties().MemoryBytes(),
            BitmapMemoryBytes()};
  }

  /// Extra heap used by the bitmaps themselves — the overhead the paper
  /// flags as this representation's main drawback.
  size_t BitmapMemoryBytes() const;
  /// Number of (source, virtual-node) bitmaps installed.
  size_t NumBitmaps() const;

  /// Bitmap accessors used by the preprocessing algorithms.
  std::unordered_map<NodeId, Bitmap>& MutableBitmapsFor(uint32_t virt) {
    return bitmaps_[virt];
  }
  const std::unordered_map<NodeId, Bitmap>& BitmapsFor(uint32_t virt) const {
    return bitmaps_[virt];
  }

  const CondensedStorage& storage() const { return storage_; }
  CondensedStorage& mutable_storage() { return storage_; }

 private:
  // Traverses from `r` on behalf of source u, honoring bitmaps; returns
  // via fn. Used by ForEachNeighbor / ExistsEdge.
  void Traverse(NodeId u, const std::function<bool(NodeId)>& fn) const;

  CondensedStorage storage_;
  // bitmaps_[v][u] = allowed out-edges of virtual node v for traversals
  // originating at real node u.
  std::vector<std::unordered_map<NodeId, Bitmap>> bitmaps_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_REPR_BITMAP_GRAPH_H_
