#ifndef GRAPHGEN_REPR_DEDUP1_GRAPH_H_
#define GRAPHGEN_REPR_DEDUP1_GRAPH_H_

#include <memory>
#include <utility>

#include "graph/graph.h"
#include "graph/storage.h"

namespace graphgen {

/// DEDUP-1: structurally identical to C-DUP but guaranteed to contain at
/// most one path between any two real nodes (§4.3), so getNeighbors needs
/// no hash set. Constructed by the deduplication algorithms of §5.2;
/// the constructor trusts (and tests verify) the no-duplication invariant.
class Dedup1Graph : public Graph {
 public:
  explicit Dedup1Graph(CondensedStorage storage)
      : storage_(std::move(storage)) {}

  std::string_view Name() const override { return "DEDUP-1"; }

  size_t NumVertices() const override { return storage_.NumRealNodes(); }
  size_t NumActiveVertices() const override {
    return storage_.NumActiveRealNodes();
  }
  bool VertexExists(NodeId v) const override {
    return v < storage_.NumRealNodes() && !storage_.IsDeleted(v);
  }

  /// Plain DFS, no hash set: the defining advantage of DEDUP-1.
  void ForEachNeighbor(NodeId u,
                       const std::function<void(NodeId)>& fn) const override {
    storage_.ForEachPathNeighbor(u, fn);
  }

  std::unique_ptr<NeighborIterator> Neighbors(NodeId u) const override;

  bool ExistsEdge(NodeId u, NodeId v) const override;
  Status AddEdge(NodeId u, NodeId v) override;
  Status DeleteEdge(NodeId u, NodeId v) override;
  NodeId AddVertex() override { return storage_.AddRealNode(); }
  Status DeleteVertex(NodeId v) override;

  uint64_t CountStoredEdges() const override {
    return storage_.CountCondensedEdges();
  }
  size_t NumVirtualNodes() const override {
    return storage_.NumVirtualNodes();
  }
  GraphFootprint MemoryFootprint() const override {
    return {storage_.MemoryBytes(), storage_.properties().MemoryBytes(), 0};
  }

  const CondensedStorage& storage() const { return storage_; }
  CondensedStorage& mutable_storage() { return storage_; }

 private:
  CondensedStorage storage_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_REPR_DEDUP1_GRAPH_H_
