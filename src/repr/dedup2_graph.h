#ifndef GRAPHGEN_REPR_DEDUP2_GRAPH_H_
#define GRAPHGEN_REPR_DEDUP2_GRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "graph/properties.h"

namespace graphgen {

/// DEDUP-2: the optimized representation for single-layer *symmetric*
/// condensed graphs (§4.3, Appendix B). All edges are undirected:
///  * a real node belongs to zero or more virtual nodes (cliques), and
///  * virtual nodes may be linked by undirected virtual-virtual edges.
/// u and v are neighbors iff they share a virtual node, or belong to two
/// virtual nodes connected by a virtual-virtual edge (exactly 1 hop).
///
/// Invariants (maintained by the DEDUP-2 builder, verified in tests):
///  (1) any two virtual nodes share at most one real member, and
///  (2) the virtual neighbors of a virtual node are pairwise disjoint and
///      disjoint from it — so getNeighbors is duplicate-free with no
///      hash set.
class Dedup2Graph : public Graph {
 public:
  Dedup2Graph() = default;
  explicit Dedup2Graph(size_t num_real)
      : membership_(num_real), deleted_(num_real, 0) {}

  std::string_view Name() const override { return "DEDUP-2"; }

  size_t NumVertices() const override { return membership_.size(); }
  size_t NumActiveVertices() const override {
    return membership_.size() - num_deleted_;
  }
  bool VertexExists(NodeId v) const override {
    return v < membership_.size() && !deleted_[v];
  }

  void ForEachNeighbor(NodeId u,
                       const std::function<void(NodeId)>& fn) const override;

  bool ExistsEdge(NodeId u, NodeId v) const override;
  /// Adds an *undirected* logical edge (creates a pair virtual node).
  Status AddEdge(NodeId u, NodeId v) override;
  /// Deletes the undirected logical edge u -- v (both directions).
  Status DeleteEdge(NodeId u, NodeId v) override;
  NodeId AddVertex() override;
  Status DeleteVertex(NodeId v) override;

  uint64_t CountStoredEdges() const override;
  size_t NumVirtualNodes() const override { return members_.size(); }
  GraphFootprint MemoryFootprint() const override;

  // ---- Builder interface (used by the DEDUP-2 greedy algorithm) ----

  /// Creates a virtual node with the given members; returns its id.
  uint32_t AddVirtualNode(std::vector<NodeId> members);
  /// Adds an undirected virtual-virtual edge.
  void AddVirtualEdge(uint32_t v, uint32_t w);
  void RemoveVirtualEdge(uint32_t v, uint32_t w);
  /// Removes `u` from virtual node `v`'s member list.
  void DetachMember(uint32_t v, NodeId u);

  const std::vector<NodeId>& Members(uint32_t v) const { return members_[v]; }
  const std::vector<uint32_t>& VirtualNeighbors(uint32_t v) const {
    return vadj_[v];
  }
  const std::vector<uint32_t>& MembershipOf(NodeId u) const {
    return membership_[u];
  }

  PropertyTable& properties() { return properties_; }
  const PropertyTable& properties() const { return properties_; }

 private:
  std::vector<std::vector<uint32_t>> membership_;  // real -> virtual ids
  std::vector<std::vector<NodeId>> members_;       // virtual -> real ids
  std::vector<std::vector<uint32_t>> vadj_;        // undirected virtual adj
  std::vector<uint8_t> deleted_;
  size_t num_deleted_ = 0;
  PropertyTable properties_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_REPR_DEDUP2_GRAPH_H_
