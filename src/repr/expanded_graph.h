#ifndef GRAPHGEN_REPR_EXPANDED_GRAPH_H_
#define GRAPHGEN_REPR_EXPANDED_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/properties.h"

namespace graphgen {

/// EXP: the fully expanded graph — every logical edge is a direct real-to-
/// real edge, no virtual nodes (§4.3). Fastest to iterate, largest
/// footprint; the baseline all other representations are compared against.
///
/// Storage is flat CSR: one offsets array plus one contiguous neighbors
/// array per direction, so traversal is pure pointer arithmetic and the
/// whole adjacency lives in two cache-friendly allocations instead of one
/// heap vector per vertex. Per-range neighbor lists are kept sorted, so
/// ExistsEdge is a binary search and NeighborSpan feeds the sorted-span
/// merge kernels directly.
///
/// The §3.4 mutation API is served by a copy-on-write patch overlay: the
/// first AddEdge/DeleteEdge touching a vertex copies its CSR slice into a
/// per-vertex vector and mutates there; untouched vertices keep reading
/// the contiguous base. Analytic workloads (extract once, analyze many
/// times) therefore never pay for mutability. Vertex deletion stays lazy
/// (§3.4): a DeleteVertex *after* the adjacency was built leaves stale
/// targets in the stored lists, so HasFlatAdjacency() reports false and
/// kernels fall back to the filtering ForEachNeighbor path. Vertices
/// already deleted when the CSR is adopted (the expander's propagation of
/// storage deletions) are excluded from the arrays at build time and do
/// not cost the fast path.
class ExpandedGraph : public Graph {
 public:
  ExpandedGraph() = default;
  explicit ExpandedGraph(size_t num_vertices)
      : out_offsets_(num_vertices + 1, 0),
        in_offsets_(num_vertices + 1, 0),
        deleted_(num_vertices, 0) {}

  std::string_view Name() const override { return "EXP"; }

  size_t NumVertices() const override { return deleted_.size(); }
  size_t NumActiveVertices() const override {
    return deleted_.size() - num_deleted_;
  }
  bool VertexExists(NodeId v) const override {
    return v < deleted_.size() && !deleted_[v];
  }

  void ForEachNeighbor(NodeId u,
                       const std::function<void(NodeId)>& fn) const override;

  size_t OutDegree(NodeId u) const override;

  bool HasFlatAdjacency() const override { return stale_deletions_ == 0; }
  std::span<const NodeId> NeighborSpan(NodeId u) const override {
    return OutSpan(u);
  }

  bool ExistsEdge(NodeId u, NodeId v) const override;
  Status AddEdge(NodeId u, NodeId v) override;

  /// Bulk AddEdge: inserts a batch of (u, v) edges into the COW overlay
  /// with one sorted merge per touched vertex and direction, instead of a
  /// binary search + shifting insert per edge. Duplicates within the batch
  /// and edges already present are skipped, exactly like AddEdge. The
  /// incremental patch path uses this — an appended delta expanding
  /// through a hub virtual yields tens of thousands of new pairs that
  /// concentrate on few vertices, where per-edge insertion is quadratic.
  Status AddEdges(std::span<const std::pair<NodeId, NodeId>> edges);
  Status DeleteEdge(NodeId u, NodeId v) override;
  NodeId AddVertex() override;
  Status DeleteVertex(NodeId v) override;

  uint64_t CountStoredEdges() const override;
  size_t NumVirtualNodes() const override { return 0; }
  GraphFootprint MemoryFootprint() const override;

  /// Direct access to a (sorted) adjacency range; used by the expander,
  /// the BSP engine, and compression baselines. May include logically
  /// deleted targets while deletions are pending.
  std::span<const NodeId> RawNeighbors(NodeId u) const { return OutSpan(u); }
  std::span<const NodeId> RawInNeighbors(NodeId u) const { return InSpan(u); }

  /// Adopts fully built CSR arrays in one move (the expander's bulk-load
  /// path). `out_offsets`/`in_offsets` must have num_vertices + 1 entries
  /// and every [offsets[u], offsets[u+1]) range must be sorted and
  /// duplicate-free. `deleted` (empty = none) marks vertices that are
  /// already logically deleted; the arrays must contain no edge touching
  /// them, so the span contract stays intact. Replaces any existing
  /// adjacency and patches.
  void AdoptCsr(std::vector<uint64_t> out_offsets,
                std::vector<NodeId> out_neighbors,
                std::vector<uint64_t> in_offsets,
                std::vector<NodeId> in_neighbors,
                std::vector<uint8_t> deleted = {});

  /// Re-flattens the copy-on-write patch overlay into the CSR base arrays
  /// and scrubs any stale targets left by post-build vertex deletions:
  /// afterwards the overlay is empty, HasFlatAdjacency() is true again,
  /// and every read is a pure base-array span. The incremental patch path
  /// calls this once the overlay outgrows its threshold — COW keeps small
  /// deltas cheap, Compact() keeps long-lived graphs flat. Returns the
  /// number of overlay entries folded in.
  size_t Compact();

  /// Vertices currently carried in the patch overlay (out + in side).
  size_t PatchedVertices() const {
    return out_patch_.size() + in_patch_.size();
  }

  /// Heap bytes attributable to the overlay alone (also included in
  /// MemoryFootprint().topology_bytes).
  size_t PatchOverlayBytes() const;

  PropertyTable& properties() { return properties_; }
  const PropertyTable& properties() const { return properties_; }

 private:
  std::span<const NodeId> OutSpan(NodeId u) const {
    if (!out_patch_.empty()) {
      auto it = out_patch_.find(u);
      if (it != out_patch_.end()) return {it->second.data(), it->second.size()};
    }
    return BaseSlice(out_offsets_, out_neighbors_, u);
  }
  std::span<const NodeId> InSpan(NodeId u) const {
    if (!in_patch_.empty()) {
      auto it = in_patch_.find(u);
      if (it != in_patch_.end()) return {it->second.data(), it->second.size()};
    }
    return BaseSlice(in_offsets_, in_neighbors_, u);
  }
  static std::span<const NodeId> BaseSlice(const std::vector<uint64_t>& offsets,
                                           const std::vector<NodeId>& neighbors,
                                           NodeId u) {
    const uint64_t begin = offsets[u];
    const uint64_t end = offsets[u + 1];
    return {neighbors.data() + begin, static_cast<size_t>(end - begin)};
  }

  /// The mutable per-vertex list for u, copying the CSR slice into the
  /// patch overlay on first touch.
  std::vector<NodeId>& MutableOut(NodeId u);
  std::vector<NodeId>& MutableIn(NodeId u);

  // Flat CSR base (offsets always have NumVertices() + 1 entries).
  std::vector<uint64_t> out_offsets_{0};
  std::vector<NodeId> out_neighbors_;
  std::vector<uint64_t> in_offsets_{0};
  std::vector<NodeId> in_neighbors_;
  // Copy-on-write overlay for mutated vertices; a present entry fully
  // replaces that vertex's base slice (and stays sorted).
  std::unordered_map<NodeId, std::vector<NodeId>> out_patch_;
  std::unordered_map<NodeId, std::vector<NodeId>> in_patch_;
  std::vector<uint8_t> deleted_;
  size_t num_deleted_ = 0;
  // Deletions applied after the adjacency was built: only these can leave
  // stale targets in the stored lists (adoption-time deletions are
  // already scrubbed), so only these withdraw the span contract.
  size_t stale_deletions_ = 0;
  PropertyTable properties_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_REPR_EXPANDED_GRAPH_H_
