#ifndef GRAPHGEN_REPR_EXPANDED_GRAPH_H_
#define GRAPHGEN_REPR_EXPANDED_GRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "graph/properties.h"

namespace graphgen {

/// EXP: the fully expanded graph — every logical edge is a direct real-to-
/// real edge, no virtual nodes (§4.3). Fastest to iterate, largest
/// footprint; the baseline all other representations are compared against.
/// Adjacency lists are kept sorted so ExistsEdge is a binary search.
class ExpandedGraph : public Graph {
 public:
  ExpandedGraph() = default;
  explicit ExpandedGraph(size_t num_vertices)
      : out_(num_vertices), in_(num_vertices), deleted_(num_vertices, 0) {}

  std::string_view Name() const override { return "EXP"; }

  size_t NumVertices() const override { return out_.size(); }
  size_t NumActiveVertices() const override {
    return out_.size() - num_deleted_;
  }
  bool VertexExists(NodeId v) const override {
    return v < out_.size() && !deleted_[v];
  }

  void ForEachNeighbor(NodeId u,
                       const std::function<void(NodeId)>& fn) const override;

  size_t OutDegree(NodeId u) const override;

  bool ExistsEdge(NodeId u, NodeId v) const override;
  Status AddEdge(NodeId u, NodeId v) override;
  Status DeleteEdge(NodeId u, NodeId v) override;
  NodeId AddVertex() override;
  Status DeleteVertex(NodeId v) override;

  uint64_t CountStoredEdges() const override;
  size_t NumVirtualNodes() const override { return 0; }
  GraphFootprint MemoryFootprint() const override;

  /// Direct access to a (sorted) adjacency list; used by the expander and
  /// compression baselines.
  const std::vector<NodeId>& RawNeighbors(NodeId u) const { return out_[u]; }
  const std::vector<NodeId>& RawInNeighbors(NodeId u) const { return in_[u]; }

  /// Bulk edge insertion without sorting; call FinishBulkLoad afterwards.
  void AddEdgeUnchecked(NodeId u, NodeId v) {
    out_[u].push_back(v);
    in_[v].push_back(u);
  }
  /// Sorts and deduplicates all adjacency lists after bulk loading.
  void FinishBulkLoad();

  PropertyTable& properties() { return properties_; }
  const PropertyTable& properties() const { return properties_; }

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<uint8_t> deleted_;
  size_t num_deleted_ = 0;
  PropertyTable properties_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_REPR_EXPANDED_GRAPH_H_
