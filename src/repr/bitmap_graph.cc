#include "repr/bitmap_graph.h"

#include <vector>

namespace graphgen {

void BitmapGraph::Traverse(NodeId u,
                           const std::function<bool(NodeId)>& fn) const {
  if (u >= storage_.NumRealNodes() || storage_.IsDeleted(u)) return;
  std::vector<NodeRef> stack;
  const auto& out = storage_.OutEdges(NodeRef::Real(u));
  stack.assign(out.begin(), out.end());
  while (!stack.empty()) {
    NodeRef r = stack.back();
    stack.pop_back();
    if (r.is_real()) {
      if (r.index() == u || storage_.IsDeleted(r.index())) continue;
      if (!fn(r.index())) return;
      continue;
    }
    const uint32_t v = r.index();
    const auto& vout = storage_.OutEdges(r);
    auto it = bitmaps_[v].find(u);
    if (it == bitmaps_[v].end()) {
      stack.insert(stack.end(), vout.begin(), vout.end());
    } else {
      const Bitmap& bm = it->second;
      const size_t n = std::min(vout.size(), bm.size());
      for (size_t i = 0; i < n; ++i) {
        if (bm.Get(i)) stack.push_back(vout[i]);
      }
      // Edges appended after the bitmap was built are always traversable.
      for (size_t i = bm.size(); i < vout.size(); ++i) {
        stack.push_back(vout[i]);
      }
    }
  }
}

void BitmapGraph::ForEachNeighbor(
    NodeId u, const std::function<void(NodeId)>& fn) const {
  Traverse(u, [&](NodeId v) {
    fn(v);
    return true;
  });
}

bool BitmapGraph::ExistsEdge(NodeId u, NodeId v) const {
  if (!VertexExists(u) || !VertexExists(v)) return false;
  bool found = false;
  Traverse(u, [&](NodeId w) {
    if (w == v) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

Status BitmapGraph::AddEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("AddEdge endpoint does not exist");
  }
  if (ExistsEdge(u, v)) return Status::OK();
  storage_.AddEdge(NodeRef::Real(u), NodeRef::Real(v));
  return Status::OK();
}

Status BitmapGraph::DeleteEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("DeleteEdge endpoint does not exist");
  }
  bool removed = false;
  while (storage_.RemoveEdge(NodeRef::Real(u), NodeRef::Real(v))) {
    removed = true;
  }
  // Bitmaps make logical deletion local: find the virtual node whose
  // permitted out-edge reaches v and clear that bit. Repeat until no path
  // remains (there is exactly one in a deduplicated graph).
  while (true) {
    // DFS carrying the (virtual node, out-edge index) that led to v.
    struct Frame {
      NodeRef node;
      uint32_t via_virtual;
      size_t via_index;
    };
    std::vector<Frame> stack;
    for (NodeRef r : storage_.OutEdges(NodeRef::Real(u))) {
      stack.push_back({r, 0xFFFFFFFFu, 0});
    }
    bool found = false;
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      if (f.node.is_real()) {
        if (f.node.index() == v && f.via_virtual != 0xFFFFFFFFu) {
          auto& bms = bitmaps_[f.via_virtual];
          auto it = bms.find(u);
          if (it == bms.end()) {
            Bitmap bm(storage_.OutEdges(NodeRef::Virtual(f.via_virtual)).size(),
                      true);
            it = bms.emplace(u, std::move(bm)).first;
          }
          if (f.via_index < it->second.size()) it->second.Clear(f.via_index);
          found = true;
          removed = true;
          break;
        }
        continue;
      }
      const uint32_t vn = f.node.index();
      const auto& vout = storage_.OutEdges(f.node);
      auto it = bitmaps_[vn].find(u);
      for (size_t i = 0; i < vout.size(); ++i) {
        if (it != bitmaps_[vn].end() && i < it->second.size() &&
            !it->second.Get(i)) {
          continue;
        }
        stack.push_back({vout[i], vn, i});
      }
    }
    if (!found) break;
  }
  if (!removed) return Status::NotFound("edge does not exist");
  return Status::OK();
}

Status BitmapGraph::DeleteVertex(NodeId v) {
  if (!VertexExists(v)) {
    return Status::NotFound("vertex does not exist");
  }
  storage_.DeleteRealNode(v);
  return Status::OK();
}

size_t BitmapGraph::BitmapMemoryBytes() const {
  size_t total = bitmaps_.capacity() * sizeof(bitmaps_[0]);
  for (const auto& m : bitmaps_) {
    total += m.size() * (sizeof(NodeId) + sizeof(Bitmap) + 16);
    for (const auto& [_, bm] : m) total += bm.MemoryBytes();
  }
  return total;
}

size_t BitmapGraph::NumBitmaps() const {
  size_t n = 0;
  for (const auto& m : bitmaps_) n += m.size();
  return n;
}

}  // namespace graphgen
