#include "repr/expander.h"

#include <mutex>
#include <unordered_set>

#include "common/parallel.h"

namespace graphgen {

ExpandedGraph ExpandCondensed(const CondensedStorage& storage) {
  const size_t n = storage.NumRealNodes();
  ExpandedGraph graph(n);
  // Out-lists are independent per source node, so fill them in parallel;
  // in-lists are rebuilt afterwards to avoid cross-thread writes.
  std::vector<std::vector<NodeId>> out(n);
  ParallelFor(n, [&](size_t begin, size_t end) {
    std::unordered_set<NodeId> seen;
    for (size_t u = begin; u < end; ++u) {
      if (storage.IsDeleted(static_cast<NodeId>(u))) continue;
      seen.clear();
      storage.ForEachPathNeighbor(static_cast<NodeId>(u), [&](NodeId v) {
        if (seen.insert(v).second) out[u].push_back(v);
      });
    }
  });
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : out[u]) graph.AddEdgeUnchecked(u, v);
  }
  graph.FinishBulkLoad();
  // Copy vertex properties across.
  graph.properties() = storage.properties();
  // Propagate lazy deletions.
  for (NodeId u = 0; u < n; ++u) {
    if (storage.IsDeleted(u)) {
      Status st = graph.DeleteVertex(u);
      (void)st;
    }
  }
  return graph;
}

}  // namespace graphgen
