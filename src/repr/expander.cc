#include "repr/expander.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace graphgen {

// Two-pass count-then-fill CSR build. Pass 1 measures each source's raw
// path-neighbor count (duplicates included) so one contiguous scratch
// array can be carved into per-vertex ranges; pass 2 fills each range and
// sorts + uniques it *in place* — per-thread, allocation-free, and far
// cheaper than the per-node unordered_set the previous implementation
// paid for every path edge. The deduplicated ranges are then compacted
// into the final out-CSR, and the in-CSR is derived from it.
ExpandedGraph ExpandCondensed(const CondensedStorage& storage) {
  static obs::Counter* const expands =
      obs::MetricsRegistry::Global().GetCounter("repr.expand_calls");
  static obs::Histogram* const expand_us =
      obs::MetricsRegistry::Global().GetHistogram("repr.expand_us");
  expands->Increment();
  ScopedTimer expand_timer(expand_us);
  const size_t n = storage.NumRealNodes();
  ExpandedGraph graph(n);

  // Pass 1: raw (duplicated) path-degree per source. Work per vertex is
  // proportional to its condensed out-fanout, so split by that weight.
  std::vector<uint64_t> raw_deg(n, 0);
  ParallelForRanges(
      BalancedRanges(n,
                     [&](size_t u) {
                       return uint64_t{1} +
                              storage.OutEdges(NodeRef::Real(
                                               static_cast<NodeId>(u)))
                                  .size();
                     }),
      [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          if (storage.IsDeleted(static_cast<NodeId>(u))) continue;
          uint64_t count = 0;
          storage.ForEachPathNeighbor(static_cast<NodeId>(u),
                                      [&](NodeId) { ++count; });
          raw_deg[u] = count;
        }
      });

  std::vector<uint64_t> raw_offsets(n + 1, 0);
  for (size_t u = 0; u < n; ++u) raw_offsets[u + 1] = raw_offsets[u] + raw_deg[u];
  std::vector<NodeId> raw(raw_offsets[n]);

  // Pass 2: fill each range, then sort + unique it in place; deg[u] is the
  // deduplicated degree. Ranges are disjoint, so threads never contend.
  std::vector<uint64_t> deg(n, 0);
  ParallelForRanges(
      BalancedRanges(n, [&](size_t u) { return uint64_t{1} + raw_deg[u]; }),
      [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          if (raw_deg[u] == 0) continue;
          NodeId* dst = raw.data() + raw_offsets[u];
          size_t k = 0;
          storage.ForEachPathNeighbor(static_cast<NodeId>(u),
                                      [&](NodeId v) { dst[k++] = v; });
          std::sort(dst, dst + k);
          deg[u] = static_cast<uint64_t>(std::unique(dst, dst + k) - dst);
        }
      });

  // Compact the deduplicated prefixes into the final out-CSR.
  std::vector<uint64_t> out_offsets(n + 1, 0);
  for (size_t u = 0; u < n; ++u) out_offsets[u + 1] = out_offsets[u] + deg[u];
  std::vector<NodeId> out_neighbors(out_offsets[n]);
  ParallelForRanges(
      BalancedRanges(n, [&](size_t u) { return uint64_t{1} + deg[u]; }),
      [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          std::copy_n(raw.data() + raw_offsets[u], deg[u],
                      out_neighbors.data() + out_offsets[u]);
        }
      });
  raw.clear();
  raw.shrink_to_fit();

  // In-CSR from the out-CSR: count, scan, then fill by ascending source so
  // every in-range comes out already sorted (and unique, since the
  // out-lists are).
  std::vector<uint64_t> in_offsets(n + 1, 0);
  for (NodeId v : out_neighbors) ++in_offsets[v + 1];
  for (size_t u = 0; u < n; ++u) in_offsets[u + 1] += in_offsets[u];
  std::vector<NodeId> in_neighbors(out_neighbors.size());
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (size_t u = 0; u < n; ++u) {
      const uint64_t begin = out_offsets[u];
      const uint64_t end = out_offsets[u + 1];
      for (uint64_t i = begin; i < end; ++i) {
        in_neighbors[cursor[out_neighbors[i]]++] = static_cast<NodeId>(u);
      }
    }
  }

  // Propagate lazy deletions at adoption time: ForEachPathNeighbor never
  // emits deleted endpoints, so the CSR is already scrubbed and the span
  // fast path stays available despite them.
  std::vector<uint8_t> deleted(n, 0);
  for (size_t u = 0; u < n; ++u) {
    deleted[u] = storage.IsDeleted(static_cast<NodeId>(u)) ? 1 : 0;
  }
  graph.AdoptCsr(std::move(out_offsets), std::move(out_neighbors),
                 std::move(in_offsets), std::move(in_neighbors),
                 std::move(deleted));
  // Copy vertex properties across.
  graph.properties() = storage.properties();
  return graph;
}

}  // namespace graphgen
