#include "repr/expanded_graph.h"

#include <algorithm>

#include "common/memory.h"

namespace graphgen {

void ExpandedGraph::ForEachNeighbor(
    NodeId u, const std::function<void(NodeId)>& fn) const {
  if (!VertexExists(u)) return;
  for (NodeId v : out_[u]) {
    if (!deleted_[v]) fn(v);
  }
}

size_t ExpandedGraph::OutDegree(NodeId u) const {
  if (!VertexExists(u)) return 0;
  if (num_deleted_ == 0) return out_[u].size();
  size_t n = 0;
  for (NodeId v : out_[u]) {
    if (!deleted_[v]) ++n;
  }
  return n;
}

bool ExpandedGraph::ExistsEdge(NodeId u, NodeId v) const {
  if (!VertexExists(u) || !VertexExists(v)) return false;
  return std::binary_search(out_[u].begin(), out_[u].end(), v);
}

Status ExpandedGraph::AddEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("AddEdge endpoint does not exist");
  }
  auto it = std::lower_bound(out_[u].begin(), out_[u].end(), v);
  if (it != out_[u].end() && *it == v) return Status::OK();
  out_[u].insert(it, v);
  auto it2 = std::lower_bound(in_[v].begin(), in_[v].end(), u);
  in_[v].insert(it2, u);
  return Status::OK();
}

Status ExpandedGraph::DeleteEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("DeleteEdge endpoint does not exist");
  }
  auto it = std::lower_bound(out_[u].begin(), out_[u].end(), v);
  if (it == out_[u].end() || *it != v) {
    return Status::NotFound("edge does not exist");
  }
  out_[u].erase(it);
  auto it2 = std::lower_bound(in_[v].begin(), in_[v].end(), u);
  if (it2 != in_[v].end() && *it2 == u) in_[v].erase(it2);
  return Status::OK();
}

NodeId ExpandedGraph::AddVertex() {
  out_.emplace_back();
  in_.emplace_back();
  deleted_.push_back(0);
  return static_cast<NodeId>(out_.size() - 1);
}

Status ExpandedGraph::DeleteVertex(NodeId v) {
  if (!VertexExists(v)) {
    return Status::NotFound("vertex does not exist");
  }
  deleted_[v] = 1;
  ++num_deleted_;
  return Status::OK();
}

uint64_t ExpandedGraph::CountStoredEdges() const {
  uint64_t total = 0;
  for (NodeId u = 0; u < out_.size(); ++u) {
    if (deleted_[u]) continue;
    if (num_deleted_ == 0) {
      total += out_[u].size();
    } else {
      for (NodeId v : out_[u]) {
        if (!deleted_[v]) ++total;
      }
    }
  }
  return total;
}

GraphFootprint ExpandedGraph::MemoryFootprint() const {
  return {NestedVectorBytes(out_) + NestedVectorBytes(in_) +
              VectorBytes(deleted_),
          properties_.MemoryBytes(), 0};
}

void ExpandedGraph::FinishBulkLoad() {
  for (auto& l : out_) {
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
  }
  for (auto& l : in_) {
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
  }
}

}  // namespace graphgen
