#include "repr/expanded_graph.h"

#include <algorithm>
#include <cassert>

#include "common/memory.h"

namespace graphgen {

namespace {

size_t PatchBytes(const std::unordered_map<NodeId, std::vector<NodeId>>& m) {
  if (m.empty()) return 0;  // the sentinel bucket is not heap-allocated
  // Bucket array + node overhead estimate, plus the inner buffers.
  size_t total = m.bucket_count() * sizeof(void*);
  for (const auto& [u, list] : m) {
    total += sizeof(u) + sizeof(list) + list.capacity() * sizeof(NodeId) +
             2 * sizeof(void*);
  }
  return total;
}

}  // namespace

void ExpandedGraph::ForEachNeighbor(
    NodeId u, const std::function<void(NodeId)>& fn) const {
  if (!VertexExists(u)) return;
  for (NodeId v : OutSpan(u)) {
    if (!deleted_[v]) fn(v);
  }
}

size_t ExpandedGraph::OutDegree(NodeId u) const {
  if (!VertexExists(u)) return 0;
  std::span<const NodeId> out = OutSpan(u);
  if (stale_deletions_ == 0) return out.size();
  size_t n = 0;
  for (NodeId v : out) {
    if (!deleted_[v]) ++n;
  }
  return n;
}

bool ExpandedGraph::ExistsEdge(NodeId u, NodeId v) const {
  if (!VertexExists(u) || !VertexExists(v)) return false;
  std::span<const NodeId> out = OutSpan(u);
  return std::binary_search(out.begin(), out.end(), v);
}

std::vector<NodeId>& ExpandedGraph::MutableOut(NodeId u) {
  auto [it, inserted] = out_patch_.try_emplace(u);
  if (inserted) {
    std::span<const NodeId> base = BaseSlice(out_offsets_, out_neighbors_, u);
    it->second.assign(base.begin(), base.end());
  }
  return it->second;
}

std::vector<NodeId>& ExpandedGraph::MutableIn(NodeId u) {
  auto [it, inserted] = in_patch_.try_emplace(u);
  if (inserted) {
    std::span<const NodeId> base = BaseSlice(in_offsets_, in_neighbors_, u);
    it->second.assign(base.begin(), base.end());
  }
  return it->second;
}

Status ExpandedGraph::AddEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("AddEdge endpoint does not exist");
  }
  std::span<const NodeId> cur = OutSpan(u);
  if (std::binary_search(cur.begin(), cur.end(), v)) return Status::OK();
  std::vector<NodeId>& out = MutableOut(u);
  out.insert(std::lower_bound(out.begin(), out.end(), v), v);
  std::vector<NodeId>& in = MutableIn(v);
  auto it = std::lower_bound(in.begin(), in.end(), u);
  if (it == in.end() || *it != u) in.insert(it, u);
  return Status::OK();
}

Status ExpandedGraph::AddEdges(std::span<const std::pair<NodeId, NodeId>> edges) {
  if (edges.empty()) return Status::OK();
  // Pack (u, v) into sortable keys so one pass groups the batch by source.
  std::vector<uint64_t> keys;
  keys.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    if (!VertexExists(u) || !VertexExists(v)) {
      return Status::InvalidArgument("AddEdge endpoint does not exist");
    }
    keys.push_back(static_cast<uint64_t>(u) << 32 | v);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // Merges each key run [u | v...] into `patch[u]` as one sorted union
  // against the vertex's current list. Keys whose edge was genuinely new
  // are re-packed (v, u) into `reversed` to drive the other direction.
  auto merge_runs = [this](const std::vector<uint64_t>& runs,
                           std::unordered_map<NodeId, std::vector<NodeId>>& patch,
                           const std::vector<uint64_t>& offsets,
                           const std::vector<NodeId>& base,
                           std::vector<uint64_t>* reversed) {
    std::vector<NodeId> merged;
    size_t i = 0;
    while (i < runs.size()) {
      const NodeId u = static_cast<NodeId>(runs[i] >> 32);
      size_t j = i;
      while (j < runs.size() && (runs[j] >> 32) == u) ++j;
      auto it = patch.find(u);
      const std::span<const NodeId> cur =
          it != patch.end() ? std::span<const NodeId>(it->second)
                            : BaseSlice(offsets, base, u);
      merged.clear();
      merged.reserve(cur.size() + (j - i));
      const NodeId* p = cur.data();
      const NodeId* pe = p + cur.size();
      for (size_t k = i; k < j; ++k) {
        const NodeId v = static_cast<NodeId>(runs[k]);
        while (p != pe && *p < v) merged.push_back(*p++);
        if (p != pe && *p == v) continue;  // present; emitted by a later drain
        merged.push_back(v);
        if (reversed != nullptr) {
          reversed->push_back(static_cast<uint64_t>(v) << 32 | u);
        }
      }
      while (p != pe) merged.push_back(*p++);
      if (merged.size() != cur.size()) {
        if (it != patch.end()) {
          it->second = std::move(merged);
        } else {
          patch.emplace(u, std::move(merged));
        }
        merged = {};
      }
      i = j;
    }
  };

  std::vector<uint64_t> reversed;
  reversed.reserve(keys.size());
  merge_runs(keys, out_patch_, out_offsets_, out_neighbors_, &reversed);
  std::sort(reversed.begin(), reversed.end());
  merge_runs(reversed, in_patch_, in_offsets_, in_neighbors_, nullptr);
  return Status::OK();
}

Status ExpandedGraph::DeleteEdge(NodeId u, NodeId v) {
  if (!VertexExists(u) || !VertexExists(v)) {
    return Status::InvalidArgument("DeleteEdge endpoint does not exist");
  }
  std::span<const NodeId> cur = OutSpan(u);
  if (!std::binary_search(cur.begin(), cur.end(), v)) {
    return Status::NotFound("edge does not exist");
  }
  std::vector<NodeId>& out = MutableOut(u);
  out.erase(std::lower_bound(out.begin(), out.end(), v));
  std::vector<NodeId>& in = MutableIn(v);
  auto it = std::lower_bound(in.begin(), in.end(), u);
  if (it != in.end() && *it == u) in.erase(it);
  return Status::OK();
}

NodeId ExpandedGraph::AddVertex() {
  // Appending an empty CSR range keeps the base covering every vertex, so
  // the new vertex needs no patch entry until its first edge.
  out_offsets_.push_back(out_offsets_.back());
  in_offsets_.push_back(in_offsets_.back());
  deleted_.push_back(0);
  return static_cast<NodeId>(deleted_.size() - 1);
}

Status ExpandedGraph::DeleteVertex(NodeId v) {
  if (!VertexExists(v)) {
    return Status::NotFound("vertex does not exist");
  }
  deleted_[v] = 1;
  ++num_deleted_;
  ++stale_deletions_;
  return Status::OK();
}

uint64_t ExpandedGraph::CountStoredEdges() const {
  uint64_t total = 0;
  const size_t n = deleted_.size();
  for (size_t u = 0; u < n; ++u) {
    if (deleted_[u]) continue;
    std::span<const NodeId> out = OutSpan(static_cast<NodeId>(u));
    if (stale_deletions_ == 0) {
      total += out.size();
    } else {
      for (NodeId v : out) {
        if (!deleted_[v]) ++total;
      }
    }
  }
  return total;
}

size_t ExpandedGraph::PatchOverlayBytes() const {
  return PatchBytes(out_patch_) + PatchBytes(in_patch_);
}

size_t ExpandedGraph::Compact() {
  const size_t folded = out_patch_.size() + in_patch_.size();
  if (folded == 0 && stale_deletions_ == 0) return 0;
  const size_t n = deleted_.size();
  auto rebuild = [&](std::vector<uint64_t>& offsets,
                     std::vector<NodeId>& neighbors, auto span_of) {
    std::vector<uint64_t> new_offsets(n + 1, 0);
    std::vector<NodeId> new_neighbors;
    new_neighbors.reserve(neighbors.size());
    for (size_t u = 0; u < n; ++u) {
      if (!deleted_[u]) {
        for (NodeId v : span_of(static_cast<NodeId>(u))) {
          if (!deleted_[v]) new_neighbors.push_back(v);
        }
      }
      new_offsets[u + 1] = new_neighbors.size();
    }
    offsets = std::move(new_offsets);
    neighbors = std::move(new_neighbors);
  };
  rebuild(out_offsets_, out_neighbors_,
          [&](NodeId u) { return OutSpan(u); });
  // Move-assign fresh maps: clear() (and ={} list-assignment) would keep
  // the grown bucket arrays resident.
  out_patch_ = decltype(out_patch_)();
  rebuild(in_offsets_, in_neighbors_, [&](NodeId u) { return InSpan(u); });
  in_patch_ = decltype(in_patch_)();
  stale_deletions_ = 0;  // stale targets are scrubbed now
  return folded;
}

GraphFootprint ExpandedGraph::MemoryFootprint() const {
  return {VectorBytes(out_offsets_) + VectorBytes(out_neighbors_) +
              VectorBytes(in_offsets_) + VectorBytes(in_neighbors_) +
              PatchBytes(out_patch_) + PatchBytes(in_patch_) +
              VectorBytes(deleted_),
          properties_.MemoryBytes(), 0};
}

void ExpandedGraph::AdoptCsr(std::vector<uint64_t> out_offsets,
                             std::vector<NodeId> out_neighbors,
                             std::vector<uint64_t> in_offsets,
                             std::vector<NodeId> in_neighbors,
                             std::vector<uint8_t> deleted) {
  assert(!out_offsets.empty() && out_offsets.size() == in_offsets.size());
  assert(out_offsets.back() == out_neighbors.size());
  assert(in_offsets.back() == in_neighbors.size());
  assert(deleted.empty() || deleted.size() == out_offsets.size() - 1);
  out_offsets_ = std::move(out_offsets);
  out_neighbors_ = std::move(out_neighbors);
  in_offsets_ = std::move(in_offsets);
  in_neighbors_ = std::move(in_neighbors);
  out_patch_.clear();
  in_patch_.clear();
  if (deleted.empty()) {
    deleted_.assign(out_offsets_.size() - 1, 0);
    num_deleted_ = 0;
  } else {
    // Pre-scrubbed deletions: the arrays contain no edge touching these
    // vertices, so the span contract holds despite them.
    deleted_ = std::move(deleted);
    num_deleted_ = 0;
    for (uint8_t d : deleted_) num_deleted_ += d != 0;
  }
  stale_deletions_ = 0;
}

}  // namespace graphgen
