#include "repr/csr_graph.h"

#include <algorithm>

#include "common/memory.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace graphgen {

CsrGraph CsrGraph::Build(const Graph& g, size_t threads) {
  static obs::Counter* const builds =
      obs::MetricsRegistry::Global().GetCounter("repr.csr_builds");
  static obs::Histogram* const build_us =
      obs::MetricsRegistry::Global().GetHistogram("repr.csr_build_us");
  builds->Increment();
  ScopedTimer build_timer(build_us);
  CsrGraph out;
  const size_t n = g.NumVertices();
  out.exists_.assign(n, 0);
  out.offsets_.assign(n + 1, 0);
  if (n == 0) return out;

  // Single sweep per range: each worker drains its vertices' neighbor
  // callbacks into one thread-local buffer and records per-vertex degrees;
  // the buffers are then stitched into the contiguous CSR. This traverses
  // the (possibly expensive) condensed representation exactly once.
  std::vector<IndexRange> ranges = BalancedRanges(
      n, [](size_t) { return uint64_t{1}; }, threads);
  std::vector<std::vector<NodeId>> chunk_edges(ranges.size());
  std::vector<uint64_t> deg(n, 0);
  ParallelInvoke(ranges.size(), [&](size_t chunk) {
    const IndexRange r = ranges[chunk];
    std::vector<NodeId>& buf = chunk_edges[chunk];
    for (size_t u = r.begin; u < r.end; ++u) {
      const NodeId id = static_cast<NodeId>(u);
      if (!g.VertexExists(id)) continue;
      out.exists_[u] = 1;
      const size_t before = buf.size();
      g.ForEachNeighbor(id, [&](NodeId v) { buf.push_back(v); });
      deg[u] = buf.size() - before;
    }
  });

  for (size_t u = 0; u < n; ++u) {
    out.offsets_[u + 1] = out.offsets_[u] + deg[u];
    out.num_active_ += out.exists_[u];
  }
  out.neighbors_.resize(out.offsets_[n]);
  // Stitch each chunk's buffer into its CSR slices and sort every range
  // (condensed representations may emit neighbors in hash order).
  ParallelInvoke(ranges.size(), [&](size_t chunk) {
    const IndexRange r = ranges[chunk];
    const NodeId* src = chunk_edges[chunk].data();
    for (size_t u = r.begin; u < r.end; ++u) {
      NodeId* dst = out.neighbors_.data() + out.offsets_[u];
      std::copy_n(src, deg[u], dst);
      std::sort(dst, dst + deg[u]);
      src += deg[u];
    }
  });
  return out;
}

bool CsrGraph::ExistsEdge(NodeId u, NodeId v) const {
  if (!VertexExists(u) || !VertexExists(v)) return false;
  std::span<const NodeId> s = Slice(u);
  return std::binary_search(s.begin(), s.end(), v);
}

Status CsrGraph::AddEdge(NodeId, NodeId) {
  return Status::Unsupported("CSR snapshot is immutable");
}

Status CsrGraph::DeleteEdge(NodeId, NodeId) {
  return Status::Unsupported("CSR snapshot is immutable");
}

Status CsrGraph::DeleteVertex(NodeId) {
  return Status::Unsupported("CSR snapshot is immutable");
}

GraphFootprint CsrGraph::MemoryFootprint() const {
  return {VectorBytes(offsets_) + VectorBytes(neighbors_), 0,
          VectorBytes(exists_)};
}

}  // namespace graphgen
