#ifndef GRAPHGEN_DATALOG_TOKEN_H_
#define GRAPHGEN_DATALOG_TOKEN_H_

#include <string>

namespace graphgen::dsl {

enum class TokenType {
  kIdent,       // Author, ID1, courseId
  kNumber,      // 42, 3.5
  kString,      // "SIGMOD"
  kLParen,      // (
  kRParen,      // )
  kComma,       // ,
  kColonDash,   // :-
  kDot,         // .
  kUnderscore,  // _
  kEq,          // =
  kNe,          // != or <>
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kEnd,
};

std::string_view TokenTypeToString(TokenType t);

/// A lexical token with its source position (1-based line/column) for
/// error reporting.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  double number = 0.0;
  bool number_is_integer = false;
  int line = 1;
  int column = 1;
};

}  // namespace graphgen::dsl

#endif  // GRAPHGEN_DATALOG_TOKEN_H_
