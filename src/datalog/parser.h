#ifndef GRAPHGEN_DATALOG_PARSER_H_
#define GRAPHGEN_DATALOG_PARSER_H_

#include <string>

#include "common/status.h"
#include "datalog/ast.h"

namespace graphgen::dsl {

/// Parses a GraphGen DSL program, e.g.
///
///   Nodes(ID, Name) :- Author(ID, Name).
///   Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).
///
/// Grammar (non-recursive Datalog subset, paper §3.2):
///   program    := rule+
///   rule       := head ":-" body "."
///   head       := ("Nodes" | "Edges") "(" ident ("," ident)* ")"
///   body       := literal ("," literal)*
///   literal    := atom | comparison
///   atom       := ident "(" term ("," term)* ")"
///   term       := ident | number | string | "_"
///   comparison := ident cmpop (ident | number | string)
Result<Program> Parse(std::string_view input);

}  // namespace graphgen::dsl

#endif  // GRAPHGEN_DATALOG_PARSER_H_
