#ifndef GRAPHGEN_DATALOG_AST_H_
#define GRAPHGEN_DATALOG_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace graphgen::dsl {

/// Comparison operators in body predicates (e.g. `year > 2010`).
enum class PredOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view PredOpToString(PredOp op);

/// An argument of a body or head atom.
struct Term {
  enum class Kind { kVariable, kConstant, kWildcard };
  Kind kind = Kind::kVariable;
  std::string variable;  // for kVariable
  rel::Value constant;   // for kConstant

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.variable = std::move(name);
    return t;
  }
  static Term Const(rel::Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = std::move(v);
    return t;
  }
  static Term Wildcard() {
    Term t;
    t.kind = Kind::kWildcard;
    return t;
  }

  std::string ToString() const;
};

/// `Relation(arg, arg, ...)`.
struct Atom {
  std::string relation;
  std::vector<Term> args;

  std::string ToString() const;
};

/// `Var <op> constant` or `Var <op> Var` filter literal.
struct Comparison {
  std::string lhs_var;
  PredOp op = PredOp::kEq;
  bool rhs_is_var = false;
  std::string rhs_var;    // when rhs_is_var
  rel::Value rhs_const;   // otherwise

  std::string ToString() const;
};

/// `COUNT(Var) <op> N`: keep an edge only when the join produces at
/// least/exactly/... N bindings of Var for the same (ID1, ID2) pair —
/// the paper's "co-authored multiple papers together" motivation (§1).
/// Aggregations put the rule in Case 2 of §3.3: the planner must execute
/// the full join instead of condensing.
struct AggregateConstraint {
  std::string variable;
  PredOp op = PredOp::kGe;
  int64_t threshold = 1;

  std::string ToString() const;
};

/// One `Nodes(...) :- body.` or `Edges(...) :- body.` rule.
struct Rule {
  enum class Kind { kNodes, kEdges };
  Kind kind = Kind::kNodes;
  /// Head argument names: first (Nodes) / first two (Edges) are IDs, the
  /// rest become vertex properties (paper §3.2).
  std::vector<std::string> head_args;
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;
  std::optional<AggregateConstraint> count_constraint;

  std::string ToString() const;
};

/// A full extraction program: >=1 Nodes rule then >=1 Edges rule.
struct Program {
  std::vector<Rule> nodes_rules;
  std::vector<Rule> edges_rules;

  std::string ToString() const;
};

}  // namespace graphgen::dsl

#endif  // GRAPHGEN_DATALOG_AST_H_
