#include "datalog/parser.h"

#include <optional>

#include "datalog/lexer.h"

namespace graphgen::dsl {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (Peek().type != TokenType::kEnd) {
      GRAPHGEN_ASSIGN_OR_RETURN(Rule rule, ParseRule());
      if (rule.kind == Rule::Kind::kNodes) {
        program.nodes_rules.push_back(std::move(rule));
      } else {
        program.edges_rules.push_back(std::move(rule));
      }
    }
    if (program.nodes_rules.empty()) {
      return Error("program must contain at least one Nodes statement");
    }
    if (program.edges_rules.empty()) {
      return Error("program must contain at least one Edges statement");
    }
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(msg + " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column));
  }

  Result<Token> Expect(TokenType type) {
    if (Peek().type != type) {
      return Error("expected " + std::string(TokenTypeToString(type)) +
                   ", found " + std::string(TokenTypeToString(Peek().type)) +
                   (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
    }
    return Advance();
  }

  Result<Rule> ParseRule() {
    GRAPHGEN_ASSIGN_OR_RETURN(Token head, Expect(TokenType::kIdent));
    Rule rule;
    if (head.text == "Nodes") {
      rule.kind = Rule::Kind::kNodes;
    } else if (head.text == "Edges") {
      rule.kind = Rule::Kind::kEdges;
    } else {
      return Error("rule head must be 'Nodes' or 'Edges', found '" + head.text +
                   "'");
    }
    GRAPHGEN_RETURN_NOT_OK(Expect(TokenType::kLParen).status());
    while (true) {
      GRAPHGEN_ASSIGN_OR_RETURN(Token arg, Expect(TokenType::kIdent));
      rule.head_args.push_back(arg.text);
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    GRAPHGEN_RETURN_NOT_OK(Expect(TokenType::kRParen).status());
    GRAPHGEN_RETURN_NOT_OK(Expect(TokenType::kColonDash).status());

    while (true) {
      GRAPHGEN_RETURN_NOT_OK(ParseLiteral(&rule));
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    GRAPHGEN_RETURN_NOT_OK(Expect(TokenType::kDot).status());

    const size_t min_ids = rule.kind == Rule::Kind::kNodes ? 1 : 2;
    if (rule.head_args.size() < min_ids) {
      return Error(rule.kind == Rule::Kind::kNodes
                       ? "Nodes head needs at least an ID argument"
                       : "Edges head needs at least ID1, ID2 arguments");
    }
    return rule;
  }

  // A literal is an atom `Rel(t, ...)`, a comparison `X > 5`, or an
  // aggregate constraint `COUNT(X) >= 2`.
  Status ParseLiteral(Rule* rule) {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected relation atom or comparison");
    }
    if (Peek().text == "COUNT" && Peek(1).type == TokenType::kLParen) {
      return ParseCountConstraint(rule);
    }
    if (Peek(1).type == TokenType::kLParen) {
      GRAPHGEN_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      rule->body.push_back(std::move(atom));
      return Status::OK();
    }
    GRAPHGEN_ASSIGN_OR_RETURN(Comparison cmp, ParseComparison());
    rule->comparisons.push_back(std::move(cmp));
    return Status::OK();
  }

  // COUNT(Var) <op> <integer>.
  Status ParseCountConstraint(Rule* rule) {
    if (rule->count_constraint.has_value()) {
      return Error("a rule may have at most one COUNT constraint");
    }
    Advance();  // COUNT
    GRAPHGEN_RETURN_NOT_OK(Expect(TokenType::kLParen).status());
    GRAPHGEN_ASSIGN_OR_RETURN(Token var, Expect(TokenType::kIdent));
    GRAPHGEN_RETURN_NOT_OK(Expect(TokenType::kRParen).status());
    std::optional<PredOp> op = TokenToPredOp(Peek().type);
    if (!op.has_value()) {
      return Error("expected comparison operator after COUNT(...)");
    }
    Advance();
    GRAPHGEN_ASSIGN_OR_RETURN(Token num, Expect(TokenType::kNumber));
    if (!num.number_is_integer) {
      return Error("COUNT threshold must be an integer");
    }
    AggregateConstraint agg;
    agg.variable = var.text;
    agg.op = *op;
    agg.threshold = static_cast<int64_t>(num.number);
    rule->count_constraint = agg;
    return Status::OK();
  }

  Result<Atom> ParseAtom() {
    GRAPHGEN_ASSIGN_OR_RETURN(Token rel, Expect(TokenType::kIdent));
    Atom atom;
    atom.relation = rel.text;
    GRAPHGEN_RETURN_NOT_OK(Expect(TokenType::kLParen).status());
    while (true) {
      GRAPHGEN_ASSIGN_OR_RETURN(Term term, ParseTerm());
      atom.args.push_back(std::move(term));
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    GRAPHGEN_RETURN_NOT_OK(Expect(TokenType::kRParen).status());
    return atom;
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIdent: {
        Token tok = Advance();
        return Term::Var(tok.text);
      }
      case TokenType::kUnderscore:
        Advance();
        return Term::Wildcard();
      case TokenType::kNumber: {
        Token tok = Advance();
        if (tok.number_is_integer) {
          return Term::Const(rel::Value(static_cast<int64_t>(tok.number)));
        }
        return Term::Const(rel::Value(tok.number));
      }
      case TokenType::kString: {
        Token tok = Advance();
        return Term::Const(rel::Value(tok.text));
      }
      default:
        return Error("expected term (variable, constant, or '_')");
    }
  }

  std::optional<PredOp> TokenToPredOp(TokenType t) const {
    switch (t) {
      case TokenType::kEq: return PredOp::kEq;
      case TokenType::kNe: return PredOp::kNe;
      case TokenType::kLt: return PredOp::kLt;
      case TokenType::kLe: return PredOp::kLe;
      case TokenType::kGt: return PredOp::kGt;
      case TokenType::kGe: return PredOp::kGe;
      default: return std::nullopt;
    }
  }

  Result<Comparison> ParseComparison() {
    GRAPHGEN_ASSIGN_OR_RETURN(Token lhs, Expect(TokenType::kIdent));
    std::optional<PredOp> op = TokenToPredOp(Peek().type);
    if (!op.has_value()) {
      return Error("expected comparison operator after '" + lhs.text + "'");
    }
    Advance();
    Comparison cmp;
    cmp.lhs_var = lhs.text;
    cmp.op = *op;
    const Token& rhs = Peek();
    switch (rhs.type) {
      case TokenType::kIdent: {
        Token tok = Advance();
        cmp.rhs_is_var = true;
        cmp.rhs_var = tok.text;
        break;
      }
      case TokenType::kNumber: {
        Token tok = Advance();
        cmp.rhs_const = tok.number_is_integer
                            ? rel::Value(static_cast<int64_t>(tok.number))
                            : rel::Value(tok.number);
        break;
      }
      case TokenType::kString: {
        Token tok = Advance();
        cmp.rhs_const = rel::Value(tok.text);
        break;
      }
      default:
        return Error("expected comparison right-hand side");
    }
    return cmp;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(std::string_view input) {
  GRAPHGEN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

}  // namespace graphgen::dsl
