#include "datalog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace graphgen::dsl {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)); }
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  const size_t n = input.size();

  auto make = [&](TokenType type, std::string text) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    return t;
  };
  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line) +
                              ", column " + std::to_string(column));
  };

  while (i < n) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    if (c == '%') {  // line comment
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      Token t = make(TokenType::kIdent,
                     std::string(input.substr(start, i - start)));
      column += static_cast<int>(i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_integer = true;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        // A '.' followed by a non-digit terminates the rule ("42." ends a
        // statement), so only consume it when a digit follows.
        if (input[i] == '.') {
          if (i + 1 >= n || !std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
            break;
          }
          is_integer = false;
        }
        ++i;
      }
      std::string text(input.substr(start, i - start));
      Token t = make(TokenType::kNumber, text);
      t.number = std::strtod(text.c_str(), nullptr);
      t.number_is_integer = is_integer;
      column += static_cast<int>(i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '"': {
        size_t start = ++i;
        while (i < n && input[i] != '"') {
          if (input[i] == '\n') return error("unterminated string literal");
          ++i;
        }
        if (i >= n) return error("unterminated string literal");
        Token t = make(TokenType::kString,
                       std::string(input.substr(start, i - start)));
        column += static_cast<int>(i - start + 2);
        ++i;  // closing quote
        tokens.push_back(std::move(t));
        continue;
      }
      case '(':
        tokens.push_back(make(TokenType::kLParen, "("));
        break;
      case ')':
        tokens.push_back(make(TokenType::kRParen, ")"));
        break;
      case ',':
        tokens.push_back(make(TokenType::kComma, ","));
        break;
      case '.':
        tokens.push_back(make(TokenType::kDot, "."));
        break;
      case '_':
        if (i + 1 < n && IsIdentChar(input[i + 1])) {
          return error("identifiers may not start with '_'");
        }
        tokens.push_back(make(TokenType::kUnderscore, "_"));
        break;
      case ':':
        if (i + 1 < n && input[i + 1] == '-') {
          tokens.push_back(make(TokenType::kColonDash, ":-"));
          ++i;
          ++column;
        } else {
          return error("expected ':-'");
        }
        break;
      case '=':
        tokens.push_back(make(TokenType::kEq, "="));
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tokens.push_back(make(TokenType::kNe, "!="));
          ++i;
          ++column;
        } else {
          return error("expected '!='");
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          tokens.push_back(make(TokenType::kLe, "<="));
          ++i;
          ++column;
        } else if (i + 1 < n && input[i + 1] == '>') {
          tokens.push_back(make(TokenType::kNe, "<>"));
          ++i;
          ++column;
        } else {
          tokens.push_back(make(TokenType::kLt, "<"));
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tokens.push_back(make(TokenType::kGe, ">="));
          ++i;
          ++column;
        } else {
          tokens.push_back(make(TokenType::kGt, ">"));
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    ++i;
    ++column;
  }
  Token end;
  end.type = TokenType::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(end);
  return tokens;
}

}  // namespace graphgen::dsl
