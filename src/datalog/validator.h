#ifndef GRAPHGEN_DATALOG_VALIDATOR_H_
#define GRAPHGEN_DATALOG_VALIDATOR_H_

#include "common/status.h"
#include "datalog/ast.h"
#include "relational/database.h"

namespace graphgen::dsl {

/// Semantic checks performed before planning (paper §3.3):
///  - every body relation exists in the database with matching arity,
///  - no recursion (Nodes/Edges never appear in a body),
///  - head variables are bound by some body atom,
///  - comparison variables are bound,
///  - each rule's body is a connected join query.
/// Whether the query is acyclic (Case 1) is decided later by the planner's
/// chain analysis; the validator rejects only outright malformed programs.
Status Validate(const Program& program, const rel::Database& db);

}  // namespace graphgen::dsl

#endif  // GRAPHGEN_DATALOG_VALIDATOR_H_
