#include "datalog/ast.h"

namespace graphgen::dsl {

std::string_view PredOpToString(PredOp op) {
  switch (op) {
    case PredOp::kEq: return "=";
    case PredOp::kNe: return "!=";
    case PredOp::kLt: return "<";
    case PredOp::kLe: return "<=";
    case PredOp::kGt: return ">";
    case PredOp::kGe: return ">=";
  }
  return "?";
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVariable: return variable;
    case Kind::kConstant: return constant.ToString();
    case Kind::kWildcard: return "_";
  }
  return "?";
}

std::string Atom::ToString() const {
  std::string out = relation + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string Comparison::ToString() const {
  std::string out = lhs_var;
  out += ' ';
  out += PredOpToString(op);
  out += ' ';
  out += rhs_is_var ? rhs_var : rhs_const.ToString();
  return out;
}

std::string AggregateConstraint::ToString() const {
  return "COUNT(" + variable + ") " + std::string(PredOpToString(op)) + " " +
         std::to_string(threshold);
}

std::string Rule::ToString() const {
  std::string out = kind == Kind::kNodes ? "Nodes(" : "Edges(";
  for (size_t i = 0; i < head_args.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_args[i];
  }
  out += ") :- ";
  bool first = true;
  for (const Atom& a : body) {
    if (!first) out += ", ";
    out += a.ToString();
    first = false;
  }
  for (const Comparison& c : comparisons) {
    if (!first) out += ", ";
    out += c.ToString();
    first = false;
  }
  if (count_constraint.has_value()) {
    if (!first) out += ", ";
    out += count_constraint->ToString();
    first = false;
  }
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : nodes_rules) {
    out += r.ToString();
    out += '\n';
  }
  for (const Rule& r : edges_rules) {
    out += r.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace graphgen::dsl
