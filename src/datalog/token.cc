#include "datalog/token.h"

namespace graphgen::dsl {

std::string_view TokenTypeToString(TokenType t) {
  switch (t) {
    case TokenType::kIdent: return "identifier";
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kComma: return "','";
    case TokenType::kColonDash: return "':-'";
    case TokenType::kDot: return "'.'";
    case TokenType::kUnderscore: return "'_'";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'!='";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kEnd: return "end of input";
  }
  return "?";
}

}  // namespace graphgen::dsl
