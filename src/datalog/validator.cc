#include "datalog/validator.h"

#include <set>
#include <string>

namespace graphgen::dsl {

namespace {

Status ValidateRule(const Rule& rule, const rel::Database& db) {
  const std::string label = rule.kind == Rule::Kind::kNodes ? "Nodes" : "Edges";
  if (rule.body.empty()) {
    return Status::InvalidArgument(label + " rule has an empty body");
  }

  std::set<std::string> bound;
  for (const Atom& atom : rule.body) {
    if (atom.relation == "Nodes" || atom.relation == "Edges") {
      return Status::InvalidArgument(
          "recursion is not supported: '" + atom.relation +
          "' may not appear in a rule body");
    }
    auto table = db.GetTable(atom.relation);
    if (!table.ok()) {
      return Status::InvalidArgument("unknown relation '" + atom.relation +
                                     "' in " + label + " rule");
    }
    if (atom.args.size() != (*table)->NumColumns()) {
      return Status::InvalidArgument(
          "relation '" + atom.relation + "' has " +
          std::to_string((*table)->NumColumns()) + " columns but the " + label +
          " rule uses " + std::to_string(atom.args.size()));
    }
    for (const Term& term : atom.args) {
      if (term.kind == Term::Kind::kVariable) bound.insert(term.variable);
    }
  }

  for (const std::string& head_var : rule.head_args) {
    if (!bound.contains(head_var)) {
      return Status::InvalidArgument("head variable '" + head_var +
                                     "' is not bound in the " + label +
                                     " rule body");
    }
  }
  if (rule.count_constraint.has_value()) {
    if (rule.kind != Rule::Kind::kEdges) {
      return Status::InvalidArgument(
          "COUNT constraints are only supported in Edges rules");
    }
    if (!bound.contains(rule.count_constraint->variable)) {
      return Status::InvalidArgument(
          "COUNT variable '" + rule.count_constraint->variable +
          "' is not bound in the rule body");
    }
  }
  for (const Comparison& cmp : rule.comparisons) {
    if (!bound.contains(cmp.lhs_var)) {
      return Status::InvalidArgument("comparison variable '" + cmp.lhs_var +
                                     "' is not bound in the rule body");
    }
    if (cmp.rhs_is_var && !bound.contains(cmp.rhs_var)) {
      return Status::InvalidArgument("comparison variable '" + cmp.rhs_var +
                                     "' is not bound in the rule body");
    }
  }

  // Connectivity: treat atoms as hypergraph nodes joined by shared variables
  // and require one connected component (otherwise the rule encodes a
  // cartesian product, which extraction never needs).
  const size_t n = rule.body.size();
  std::vector<bool> reached(n, false);
  std::vector<size_t> stack = {0};
  reached[0] = true;
  auto shares_var = [&](const Atom& a, const Atom& b) {
    for (const Term& ta : a.args) {
      if (ta.kind != Term::Kind::kVariable) continue;
      for (const Term& tb : b.args) {
        if (tb.kind == Term::Kind::kVariable && tb.variable == ta.variable) {
          return true;
        }
      }
    }
    return false;
  };
  while (!stack.empty()) {
    size_t i = stack.back();
    stack.pop_back();
    for (size_t j = 0; j < n; ++j) {
      if (!reached[j] && shares_var(rule.body[i], rule.body[j])) {
        reached[j] = true;
        stack.push_back(j);
      }
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (!reached[j]) {
      return Status::InvalidArgument(
          label + " rule body is not a connected join (atom '" +
          rule.body[j].relation + "' shares no variables)");
    }
  }
  return Status::OK();
}

}  // namespace

Status Validate(const Program& program, const rel::Database& db) {
  for (const Rule& rule : program.nodes_rules) {
    GRAPHGEN_RETURN_NOT_OK(ValidateRule(rule, db));
  }
  for (const Rule& rule : program.edges_rules) {
    GRAPHGEN_RETURN_NOT_OK(ValidateRule(rule, db));
  }
  return Status::OK();
}

}  // namespace graphgen::dsl
