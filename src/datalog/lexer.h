#ifndef GRAPHGEN_DATALOG_LEXER_H_
#define GRAPHGEN_DATALOG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/token.h"

namespace graphgen::dsl {

/// Tokenizes a GraphGen DSL program. Supports `%` line comments and the
/// token set of the paper's Datalog-based DSL.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace graphgen::dsl

#endif  // GRAPHGEN_DATALOG_LEXER_H_
