#include "service/graph_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/faultpoints.h"
#include "common/timer.h"
#include "repr/csr_graph.h"
#include "service/cache_key.h"

namespace graphgen::service {

namespace {

/// The service-layer fault point lives in a helper so kThrow unwinds into
/// the owner's try block (the macro returns from its enclosing function,
/// which must not be ExtractWithKey itself — that would strand the
/// single-flight entry).
Status BeginExtractionFault() {
  GRAPHGEN_FAULT_POINT("service.extract.begin");
  return Status::OK();
}

}  // namespace

GraphService::GraphService(const rel::Database* db, ServiceOptions options)
    : db_(db),
      options_(std::move(options)),
      engine_(db),
      cache_(options_.cache_budget_bytes),
      stale_(options_.stale_budget_bytes),
      requests_(registry_.GetCounter("service.requests")),
      cache_hits_(registry_.GetCounter("service.cache_hits")),
      cold_extractions_(registry_.GetCounter("service.cold_extractions")),
      delta_patched_(registry_.GetCounter("service.delta_patched")),
      delta_fallback_(registry_.GetCounter("service.delta_fallback")),
      coalesced_(registry_.GetCounter("service.coalesced")),
      failed_(registry_.GetCounter("service.failed")),
      uncacheable_(registry_.GetCounter("service.uncacheable")),
      csr_builds_(registry_.GetCounter("service.csr_builds")),
      slow_requests_(registry_.GetCounter("service.slow_requests")),
      cancelled_(registry_.GetCounter("service.cancelled")),
      deadline_exceeded_(registry_.GetCounter("service.deadline_exceeded")),
      overload_rejected_(registry_.GetCounter("service.overload_rejected")),
      resource_exhausted_(registry_.GetCounter("service.resource_exhausted")),
      stale_served_(registry_.GetCounter("service.stale_served")),
      inflight_gauge_(registry_.GetGauge("service.inflight_extractions")),
      admission_queue_gauge_(registry_.GetGauge("service.admission_queued")),
      cache_bytes_gauge_(registry_.GetGauge("service.cache_bytes")),
      cache_graphs_gauge_(registry_.GetGauge("service.cache_graphs")),
      cache_evictions_gauge_(registry_.GetGauge("service.cache_evictions")),
      flat_views_gauge_(registry_.GetGauge("service.flat_views")),
      named_graphs_gauge_(registry_.GetGauge("service.named_graphs")),
      request_us_(registry_.GetHistogram("service.extract_us")),
      pool_(options_.worker_threads) {}

GraphService::GraphService(rel::Database* db, ServiceOptions options)
    : GraphService(static_cast<const rel::Database*>(db), std::move(options)) {
  mutable_db_ = db;
}

GraphService::~GraphService() = default;

Status GraphService::Append(const std::string& table,
                            const std::vector<rel::Row>& rows) {
  if (mutable_db_ == nullptr) {
    return Status::InvalidArgument(
        "service database is read-only (constructed from a const Database)");
  }
  WriterMutexLock lock(db_mu_);
  return mutable_db_->AppendRows(table, rows);
}

bool GraphService::IsFresh(const GraphHandle& handle) const {
  if (handle->incremental != nullptr) {
    for (const auto& [name, basis] : handle->incremental->basis) {
      auto now = db_->VersionOf(name);
      if (!now.ok() || now->version != basis.version ||
          now->rows != basis.rows) {
        return false;
      }
    }
    return true;
  }
  return handle->db_tick == db_->CurrentTick();
}

Result<GraphHandle> GraphService::Extract(std::string_view datalog) {
  return ExtractWithKey(datalog, options_.default_options, RequestOptions{});
}

Result<GraphHandle> GraphService::Extract(std::string_view datalog,
                                          const GraphGenOptions& options) {
  return ExtractWithKey(datalog, options, RequestOptions{});
}

Result<GraphHandle> GraphService::Extract(std::string_view datalog,
                                          const GraphGenOptions& options,
                                          const RequestOptions& request) {
  return ExtractWithKey(datalog, options, request);
}

std::future<Result<GraphHandle>> GraphService::ExtractAsync(
    std::string datalog) {
  return ExtractAsync(std::move(datalog), options_.default_options,
                      RequestOptions{});
}

std::future<Result<GraphHandle>> GraphService::ExtractAsync(
    std::string datalog, GraphGenOptions options) {
  return ExtractAsync(std::move(datalog), std::move(options),
                      RequestOptions{});
}

std::future<Result<GraphHandle>> GraphService::ExtractAsync(
    std::string datalog, GraphGenOptions options, RequestOptions request) {
  auto promise = std::make_shared<std::promise<Result<GraphHandle>>>();
  std::future<Result<GraphHandle>> future = promise->get_future();
  // The task must never throw (ThreadPool workers don't catch): anything
  // escaping ExtractWithKey resolves the future to ExecutionError so the
  // caller's get() always returns.
  pool_.Submit([this, promise, datalog = std::move(datalog),
                options = std::move(options), request = std::move(request)] {
    try {
      promise->set_value(ExtractWithKey(datalog, options, request));
    } catch (const std::exception& e) {
      promise->set_value(Result<GraphHandle>(Status::ExecutionError(
          std::string("async extraction threw: ") + e.what())));
    } catch (...) {
      promise->set_value(Result<GraphHandle>(
          Status::ExecutionError("async extraction threw a non-exception")));
    }
  });
  return future;
}

Result<GraphHandle> GraphService::ResolveFailure(
    Status status, const std::string& key, const RequestOptions& request) {
  failed_->Increment();
  switch (status.code()) {
    case StatusCode::kCancelled: cancelled_->Increment(); break;
    case StatusCode::kDeadlineExceeded: deadline_exceeded_->Increment(); break;
    case StatusCode::kOverloaded: overload_rejected_->Increment(); break;
    case StatusCode::kResourceExhausted:
      resource_exhausted_->Increment();
      break;
    default: break;
  }
  if (request.allow_stale && !key.empty()) {
    if (GraphHandle stale = stale_.Get(key)) {
      stale_served_->Increment();
      return stale;
    }
  }
  return status;
}

bool GraphService::AdmissionTurnLocked(uint64_t ticket) const {
  return inflight_extractions_ < options_.max_inflight_extractions &&
         !admit_queue_.empty() && admit_queue_.front() == ticket;
}

Status GraphService::AdmitExtraction(const ExecContext& ctx) {
  MutexLock lock(admit_mu_);
  const size_t max = options_.max_inflight_extractions;
  if (max == 0) {
    ++inflight_extractions_;
    return Status::OK();
  }
  if (inflight_extractions_ < max && admit_queue_.empty()) {
    ++inflight_extractions_;
    return Status::OK();
  }
  if (admit_queue_.size() >= options_.admission_queue_capacity) {
    return Status::Overloaded(
        "extraction rejected: " + std::to_string(inflight_extractions_) +
        " in flight, " + std::to_string(admit_queue_.size()) +
        " queued (capacity " +
        std::to_string(options_.admission_queue_capacity) + ")");
  }
  const uint64_t ticket = admit_ticket_++;
  admit_queue_.push_back(ticket);
  while (!AdmissionTurnLocked(ticket) && ctx.Check().ok()) {
    // Deadlines are honored while queued; a cancel-only context is polled
    // because nothing kicks the cv when a caller raises the flag.
    if (ctx.has_deadline) {
      admit_cv_.WaitUntil(admit_mu_, ctx.deadline);
      if (ctx.DeadlineExpired()) break;
    } else if (ctx.cancel.cancellable()) {
      admit_cv_.WaitFor(admit_mu_, std::chrono::milliseconds(20));
    } else {
      admit_cv_.Wait(admit_mu_);
    }
  }
  if (!AdmissionTurnLocked(ticket)) {
    auto it = std::find(admit_queue_.begin(), admit_queue_.end(), ticket);
    if (it != admit_queue_.end()) admit_queue_.erase(it);
    admit_cv_.NotifyAll();  // our slot in line opened up
    Status st = ctx.Check();
    return st.ok() ? Status::DeadlineExceeded(
                         "request expired while queued for admission")
                   : st;
  }
  admit_queue_.pop_front();
  ++inflight_extractions_;
  admit_cv_.NotifyAll();
  return Status::OK();
}

void GraphService::ReleaseExtraction() {
  {
    MutexLock lock(admit_mu_);
    --inflight_extractions_;
  }
  admit_cv_.NotifyAll();
}

Result<GraphHandle> GraphService::ExtractWithKey(
    std::string_view datalog, const GraphGenOptions& options,
    const RequestOptions& request) {
  requests_->Increment();
  auto key = CanonicalCacheKey(datalog, options);
  if (!key.ok()) return ResolveFailure(key.status(), "", request);

  // Request lifecycle context threaded through the whole pipeline. The
  // deadline clock starts here, so admission queueing counts against it.
  ExecContext ctx;
  ctx.cancel = request.cancel;
  ctx.SetDeadlineAfter(request.deadline_seconds);
  if (request.memory_limit_bytes > 0) {
    ctx.budget = std::make_shared<MemoryBudget>(request.memory_limit_bytes);
  }

  // Cache lookup + version-vector freshness check (the staleness hole:
  // serving a cached graph after its tables changed). A behind-version
  // entry is NOT a hit — it becomes the patch basis for the owner below.
  GraphHandle basis;
  {
    GraphHandle cached;
    {
      MutexLock lock(mu_);
      cached = cache_.Get(*key);
    }
    if (cached != nullptr) {
      bool fresh;
      {
        ReaderMutexLock db_lock(db_mu_);
        fresh = IsFresh(cached);
      }
      if (fresh) {
        cache_hits_->Increment();
        return cached;
      }
      basis = std::move(cached);
    }
  }

  std::shared_ptr<Inflight> flight;
  bool owner = false;
  {
    MutexLock lock(mu_);
    auto it = inflight_.find(*key);
    if (it != inflight_.end()) {
      flight = it->second;
      coalesced_->Increment();
    } else {
      flight = std::make_shared<Inflight>();
      inflight_[*key] = flight;
      owner = true;
    }
  }

  if (!owner) {
    Status flight_status;
    GraphHandle flight_graph;
    {
      MutexLock wait_lock(flight->mu);
      while (!flight->done) flight->cv.Wait(flight->mu);
      flight_status = flight->status;
      flight_graph = flight->graph;
    }
    // Copied out first: ResolveFailure reads the stale store (its own
    // lock), which a coalesced waiter has no business holding this flight
    // lock across.
    if (!flight_status.ok()) {
      return ResolveFailure(flight_status, *key, request);
    }
    return flight_graph;
  }

  // This thread runs the pipeline; everyone else with this key waits. An
  // escaping exception (std::bad_alloc on a huge graph) must still reach
  // the cleanup below, or the stranded inflight_ entry would deadlock
  // every later request for this key — convert it to a Status instead.
  // Admission gates the owner only: cache hits and coalesced waiters cost
  // no pipeline slot. A rejected owner publishes Overloaded to its
  // waiters — the same single-flight failure semantics as any other
  // pipeline error (nothing cached, key immediately retryable).
  GraphHandle handle;
  Status status;
  bool served_by_patch = false;
  WallTimer extract_timer;
  status = AdmitExtraction(ctx);
  if (status.ok()) {
    try {
      status = BeginExtractionFault();
      if (status.ok()) status = ctx.Check();
      if (status.ok()) {
        // Share the service pool with the extraction pipeline so
        // independent Datalog rules fan out onto idle workers. RunBatch
        // lets this thread participate, so running on a pool worker
        // (ExtractAsync) can never deadlock.
        GraphGenOptions run_options = options;
        run_options.extract.pool = &pool_;
        run_options.extract.ctx = ctx;
        run_options.capture_incremental =
            run_options.capture_incremental || options_.incremental;
        // Reader side of db_mu_ for the whole pipeline: Append cannot
        // land a batch between the patch's version snapshot and its
        // delta scans (acquired after admission; see db_mu_ ordering).
        ReaderMutexLock db_lock(db_mu_);
        if (basis != nullptr && options_.incremental) {
          // Behind-version entry: advance it by delta patching. Soft
          // fallbacks run the cold pipeline below; hard failures
          // (cancel, deadline, memory, execution) fail the request.
          Result<PatchOutcome> outcome =
              engine_.PatchExtracted(*basis, run_options);
          if (!outcome.ok()) {
            status = outcome.status();
          } else if (outcome->patched) {
            delta_patched_->Increment();
            handle = std::make_shared<const ExtractedGraph>(
                std::move(outcome->graph));
            served_by_patch = true;
          } else {
            delta_fallback_->Increment();
          }
        }
        if (status.ok() && handle == nullptr) {
          Result<ExtractedGraph> extracted =
              engine_.Extract(datalog, run_options);
          status = extracted.status();
          if (extracted.ok()) {
            handle =
                std::make_shared<const ExtractedGraph>(std::move(*extracted));
          }
        }
      }
    } catch (const std::exception& e) {
      handle = nullptr;
      status =
          Status::ExecutionError(std::string("extraction threw: ") + e.what());
    } catch (...) {
      handle = nullptr;
      status = Status::ExecutionError("extraction threw an unknown exception");
    }
    ReleaseExtraction();
  }
  const double extract_seconds = extract_timer.Seconds();
  if (handle != nullptr && !served_by_patch) {
    cold_extractions_->Increment();
    RecordExtractionLatency(datalog, extract_seconds, handle->stats.profile);
  }
  {
    MutexLock lock(mu_);
    inflight_.erase(*key);
    if (handle != nullptr) {
      if (!cache_.Put(*key, handle)) uncacheable_->Increment();
      // Remember the success for allow_stale fallbacks; failures never
      // touch either store. Best-effort: a graph too large for the stale
      // budget just isn't retained, the request still succeeds.
      (void)stale_.Put(*key, handle);
    }
  }
  {
    MutexLock flight_lock(flight->mu);
    flight->done = true;
    flight->status = status;
    flight->graph = handle;
  }
  flight->cv.NotifyAll();
  if (!status.ok()) return ResolveFailure(status, *key, request);
  return handle;
}

Result<GraphHandle> GraphService::ExtractNamed(const std::string& name,
                                               std::string_view datalog) {
  return ExtractNamed(name, datalog, options_.default_options,
                      RequestOptions{});
}

Result<GraphHandle> GraphService::ExtractNamed(
    const std::string& name, std::string_view datalog,
    const GraphGenOptions& options) {
  return ExtractNamed(name, datalog, options, RequestOptions{});
}

Result<GraphHandle> GraphService::ExtractNamed(
    const std::string& name, std::string_view datalog,
    const GraphGenOptions& options, const RequestOptions& request) {
  GRAPHGEN_ASSIGN_OR_RETURN(GraphHandle handle,
                            ExtractWithKey(datalog, options, request));
  GRAPHGEN_RETURN_NOT_OK(Register(name, handle, /*overwrite=*/true));
  return handle;
}

Status GraphService::Register(const std::string& name, GraphHandle graph,
                              bool overwrite) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  if (graph == nullptr || graph->graph == nullptr) {
    return Status::InvalidArgument("cannot register a null graph");
  }
  MutexLock lock(mu_);
  if (!overwrite && names_.count(name) > 0) {
    return Status::AlreadyExists("graph '" + name + "' is already registered");
  }
  names_[name] = std::move(graph);
  return Status::OK();
}

Result<GraphHandle> GraphService::Lookup(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return it->second;
}

Status GraphService::Drop(const std::string& name) {
  MutexLock lock(mu_);
  if (names_.erase(name) == 0) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return Status::OK();
}

std::vector<NamedGraphInfo> GraphService::List() const {
  // Snapshot the registry, then compute per-graph stats (CountStoredEdges
  // walks adjacency lists) without holding mu_ — handles are immutable.
  std::vector<std::pair<std::string, GraphHandle>> snapshot;
  {
    MutexLock lock(mu_);
    snapshot.assign(names_.begin(), names_.end());
  }
  std::vector<NamedGraphInfo> out;
  out.reserve(snapshot.size());
  for (const auto& [name, handle] : snapshot) {
    NamedGraphInfo info;
    info.name = name;
    info.representation = RepresentationToString(handle->representation);
    info.active_vertices = handle->graph->NumActiveVertices();
    info.virtual_nodes = handle->graph->NumVirtualNodes();
    info.stored_edges = handle->graph->CountStoredEdges();
    info.footprint_bytes = handle->FootprintBytes();
    out.push_back(std::move(info));
  }
  return out;
}

void GraphService::ClearCache() {
  cache_.Clear();
  MutexLock lock(mu_);
  flat_views_.clear();
}

void GraphService::SetCacheBudget(size_t budget_bytes) {
  cache_.SetBudget(budget_bytes);
  // Shrinking is the memory-pressure lever, so release the CSR adapters
  // of just-evicted graphs now rather than waiting for the next FlatView
  // call to reap them — otherwise the bytes the shrink was meant to free
  // can stay resident indefinitely.
  MutexLock lock(mu_);
  for (auto it = flat_views_.begin(); it != flat_views_.end();) {
    it = it->second.owner.expired() ? flat_views_.erase(it) : std::next(it);
  }
}

std::shared_ptr<const Graph> GraphService::FlatView(const GraphHandle& handle) {
  if (handle == nullptr || handle->graph == nullptr) return nullptr;
  const Graph* key = handle->graph.get();
  if (key->HasFlatAdjacency()) {
    // Already devirtualizable in place; alias the handle so the view keeps
    // the ExtractedGraph alive.
    return std::shared_ptr<const Graph>(handle, key);
  }
  {
    MutexLock lock(mu_);
    // Reap adapters whose source graphs have been released (eviction,
    // Drop) so abandoned CSR snapshots don't accumulate between builds.
    for (auto it = flat_views_.begin(); it != flat_views_.end();) {
      it = it->second.owner.expired() ? flat_views_.erase(it) : std::next(it);
    }
    auto it = flat_views_.find(key);
    if (it != flat_views_.end()) {
      // Guard against a recycled Graph* address: the cached adapter is
      // only valid while the same ExtractedGraph is still alive.
      if (it->second.owner.lock() == handle) return it->second.view;
      flat_views_.erase(it);
    }
  }
  // Build outside the lock — materialization walks every edge of the
  // condensed representation. Concurrent callers may race to build the
  // same adapter; the first insert wins and the losers share it.
  auto built = std::make_shared<const CsrGraph>(CsrGraph::Build(*key));
  csr_builds_->Increment();
  MutexLock lock(mu_);
  auto [it, inserted] = flat_views_.try_emplace(key);
  if (inserted || it->second.owner.lock() != handle) {
    it->second = {handle, built};
  }
  return it->second.view;
}

void GraphService::RecordExtractionLatency(std::string_view datalog,
                                           double seconds,
                                           const obs::QueryProfile& profile) {
  request_us_->RecordSeconds(seconds);
  if (options_.slow_request_seconds <= 0 || options_.slow_log_capacity == 0 ||
      seconds < options_.slow_request_seconds) {
    return;
  }
  slow_requests_->Increment();
  SlowRequest entry;
  entry.datalog = std::string(datalog);
  entry.seconds = seconds;
  // The profile is empty (not captured) when observability was off during
  // the extraction; retain the slow request anyway — the timing and query
  // text are still actionable.
  if (!profile.empty()) {
    entry.profile = std::make_shared<const obs::QueryProfile>(profile);
  }
  MutexLock lock(mu_);
  entry.sequence = slow_sequence_++;
  slow_log_.push_back(std::move(entry));
  while (slow_log_.size() > options_.slow_log_capacity) slow_log_.pop_front();
}

std::vector<SlowRequest> GraphService::SlowRequests() const {
  MutexLock lock(mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

std::vector<obs::MetricValue> GraphService::MetricsSnapshot() const {
  // Gauges mirror derived state (cache footprint, map sizes); refresh them
  // from the source of truth so the snapshot is current.
  {
    MutexLock lock(mu_);
    flat_views_gauge_->Set(static_cast<int64_t>(flat_views_.size()));
    named_graphs_gauge_->Set(static_cast<int64_t>(names_.size()));
  }
  {
    MutexLock lock(admit_mu_);
    inflight_gauge_->Set(static_cast<int64_t>(inflight_extractions_));
    admission_queue_gauge_->Set(static_cast<int64_t>(admit_queue_.size()));
  }
  const GraphCache::StatsSnapshot cache_stats = cache_.Stats();
  cache_bytes_gauge_->Set(static_cast<int64_t>(cache_stats.bytes));
  cache_graphs_gauge_->Set(static_cast<int64_t>(cache_stats.entries));
  cache_evictions_gauge_->Set(static_cast<int64_t>(cache_stats.evictions));
  return registry_.Snapshot();
}

ServiceStats GraphService::Stats() const {
  // Compatibility view over the registry: one consistent, uniformly
  // uint64_t snapshot (the counters are this instance's own, so they are
  // exact once its requests have quiesced).
  ServiceStats stats;
  stats.requests = requests_->Value();
  stats.cache_hits = cache_hits_->Value();
  stats.cold_extractions = cold_extractions_->Value();
  stats.delta_patched = delta_patched_->Value();
  stats.delta_fallback = delta_fallback_->Value();
  stats.coalesced = coalesced_->Value();
  stats.failed = failed_->Value();
  stats.uncacheable = uncacheable_->Value();
  stats.csr_builds = csr_builds_->Value();
  stats.slow_requests = slow_requests_->Value();
  stats.cancelled = cancelled_->Value();
  stats.deadline_exceeded = deadline_exceeded_->Value();
  stats.overload_rejected = overload_rejected_->Value();
  stats.resource_exhausted = resource_exhausted_->Value();
  stats.stale_served = stale_served_->Value();
  {
    MutexLock lock(mu_);
    stats.flat_views = flat_views_.size();
    stats.named_graphs = names_.size();
  }
  {
    MutexLock lock(admit_mu_);
    stats.inflight_extractions = inflight_extractions_;
    stats.admission_queued = admit_queue_.size();
  }
  const GraphCache::StatsSnapshot cache_stats = cache_.Stats();
  stats.evictions = cache_stats.evictions;
  stats.cache_bytes = cache_stats.bytes;
  stats.cache_graphs = cache_stats.entries;
  stats.cache_budget_bytes = cache_stats.budget_bytes;
  stats.worker_threads = pool_.NumThreads();
  return stats;
}

}  // namespace graphgen::service
