#include "service/graph_service.h"

#include <utility>

#include "common/timer.h"
#include "repr/csr_graph.h"
#include "service/cache_key.h"

namespace graphgen::service {

GraphService::GraphService(const rel::Database* db, ServiceOptions options)
    : db_(db),
      options_(std::move(options)),
      engine_(db),
      cache_(options_.cache_budget_bytes),
      requests_(registry_.GetCounter("service.requests")),
      cache_hits_(registry_.GetCounter("service.cache_hits")),
      cold_extractions_(registry_.GetCounter("service.cold_extractions")),
      coalesced_(registry_.GetCounter("service.coalesced")),
      failed_(registry_.GetCounter("service.failed")),
      uncacheable_(registry_.GetCounter("service.uncacheable")),
      csr_builds_(registry_.GetCounter("service.csr_builds")),
      slow_requests_(registry_.GetCounter("service.slow_requests")),
      cache_bytes_gauge_(registry_.GetGauge("service.cache_bytes")),
      cache_graphs_gauge_(registry_.GetGauge("service.cache_graphs")),
      cache_evictions_gauge_(registry_.GetGauge("service.cache_evictions")),
      flat_views_gauge_(registry_.GetGauge("service.flat_views")),
      named_graphs_gauge_(registry_.GetGauge("service.named_graphs")),
      request_us_(registry_.GetHistogram("service.extract_us")),
      pool_(options_.worker_threads) {}

GraphService::~GraphService() = default;

Result<GraphHandle> GraphService::Extract(std::string_view datalog) {
  return ExtractWithKey(datalog, options_.default_options);
}

Result<GraphHandle> GraphService::Extract(std::string_view datalog,
                                          const GraphGenOptions& options) {
  return ExtractWithKey(datalog, options);
}

std::future<Result<GraphHandle>> GraphService::ExtractAsync(
    std::string datalog) {
  return ExtractAsync(std::move(datalog), options_.default_options);
}

std::future<Result<GraphHandle>> GraphService::ExtractAsync(
    std::string datalog, GraphGenOptions options) {
  auto promise = std::make_shared<std::promise<Result<GraphHandle>>>();
  std::future<Result<GraphHandle>> future = promise->get_future();
  pool_.Submit([this, promise, datalog = std::move(datalog),
                options = std::move(options)] {
    promise->set_value(ExtractWithKey(datalog, options));
  });
  return future;
}

Result<GraphHandle> GraphService::ExtractWithKey(
    std::string_view datalog, const GraphGenOptions& options) {
  auto record_failure = [this](Status status) -> Result<GraphHandle> {
    failed_->Increment();
    return status;
  };

  requests_->Increment();
  auto key = CanonicalCacheKey(datalog, options);
  if (!key.ok()) return record_failure(key.status());

  std::shared_ptr<Inflight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (GraphHandle cached = cache_.Get(*key)) {
      cache_hits_->Increment();
      return cached;
    }
    auto it = inflight_.find(*key);
    if (it != inflight_.end()) {
      flight = it->second;
      coalesced_->Increment();
    } else {
      flight = std::make_shared<Inflight>();
      inflight_[*key] = flight;
      owner = true;
    }
  }

  if (!owner) {
    std::unique_lock<std::mutex> wait_lock(flight->mu);
    flight->cv.wait(wait_lock, [&] { return flight->done; });
    if (!flight->status.ok()) return record_failure(flight->status);
    return flight->graph;
  }

  // This thread runs the pipeline; everyone else with this key waits. An
  // escaping exception (std::bad_alloc on a huge graph) must still reach
  // the cleanup below, or the stranded inflight_ entry would deadlock
  // every later request for this key — convert it to a Status instead.
  GraphHandle handle;
  Status status;
  WallTimer extract_timer;
  try {
    // Share the service pool with the extraction pipeline so independent
    // Datalog rules fan out onto idle workers. RunBatch lets this thread
    // participate, so running on a pool worker (ExtractAsync) can never
    // deadlock.
    GraphGenOptions run_options = options;
    run_options.extract.pool = &pool_;
    Result<ExtractedGraph> extracted = engine_.Extract(datalog, run_options);
    status = extracted.status();
    if (extracted.ok()) {
      handle = std::make_shared<const ExtractedGraph>(std::move(*extracted));
    }
  } catch (const std::exception& e) {
    handle = nullptr;
    status = Status::Internal(std::string("extraction threw: ") + e.what());
  } catch (...) {
    handle = nullptr;
    status = Status::Internal("extraction threw an unknown exception");
  }
  const double extract_seconds = extract_timer.Seconds();
  if (handle != nullptr) {
    cold_extractions_->Increment();
    RecordExtractionLatency(datalog, extract_seconds, handle->stats.profile);
  } else {
    failed_->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(*key);
    if (handle != nullptr && !cache_.Put(*key, handle)) {
      uncacheable_->Increment();
    }
  }
  {
    std::lock_guard<std::mutex> flight_lock(flight->mu);
    flight->done = true;
    flight->status = status;
    flight->graph = handle;
  }
  flight->cv.notify_all();
  if (!status.ok()) return status;
  return handle;
}

Result<GraphHandle> GraphService::ExtractNamed(const std::string& name,
                                               std::string_view datalog) {
  return ExtractNamed(name, datalog, options_.default_options);
}

Result<GraphHandle> GraphService::ExtractNamed(
    const std::string& name, std::string_view datalog,
    const GraphGenOptions& options) {
  GRAPHGEN_ASSIGN_OR_RETURN(GraphHandle handle,
                            ExtractWithKey(datalog, options));
  GRAPHGEN_RETURN_NOT_OK(Register(name, handle, /*overwrite=*/true));
  return handle;
}

Status GraphService::Register(const std::string& name, GraphHandle graph,
                              bool overwrite) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  if (graph == nullptr || graph->graph == nullptr) {
    return Status::InvalidArgument("cannot register a null graph");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!overwrite && names_.count(name) > 0) {
    return Status::AlreadyExists("graph '" + name + "' is already registered");
  }
  names_[name] = std::move(graph);
  return Status::OK();
}

Result<GraphHandle> GraphService::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return it->second;
}

Status GraphService::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (names_.erase(name) == 0) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return Status::OK();
}

std::vector<NamedGraphInfo> GraphService::List() const {
  // Snapshot the registry, then compute per-graph stats (CountStoredEdges
  // walks adjacency lists) without holding mu_ — handles are immutable.
  std::vector<std::pair<std::string, GraphHandle>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.assign(names_.begin(), names_.end());
  }
  std::vector<NamedGraphInfo> out;
  out.reserve(snapshot.size());
  for (const auto& [name, handle] : snapshot) {
    NamedGraphInfo info;
    info.name = name;
    info.representation = RepresentationToString(handle->representation);
    info.active_vertices = handle->graph->NumActiveVertices();
    info.virtual_nodes = handle->graph->NumVirtualNodes();
    info.stored_edges = handle->graph->CountStoredEdges();
    info.footprint_bytes = handle->FootprintBytes();
    out.push_back(std::move(info));
  }
  return out;
}

void GraphService::ClearCache() {
  cache_.Clear();
  std::lock_guard<std::mutex> lock(mu_);
  flat_views_.clear();
}

void GraphService::SetCacheBudget(size_t budget_bytes) {
  cache_.SetBudget(budget_bytes);
  // Shrinking is the memory-pressure lever, so release the CSR adapters
  // of just-evicted graphs now rather than waiting for the next FlatView
  // call to reap them — otherwise the bytes the shrink was meant to free
  // can stay resident indefinitely.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = flat_views_.begin(); it != flat_views_.end();) {
    it = it->second.owner.expired() ? flat_views_.erase(it) : std::next(it);
  }
}

std::shared_ptr<const Graph> GraphService::FlatView(const GraphHandle& handle) {
  if (handle == nullptr || handle->graph == nullptr) return nullptr;
  const Graph* key = handle->graph.get();
  if (key->HasFlatAdjacency()) {
    // Already devirtualizable in place; alias the handle so the view keeps
    // the ExtractedGraph alive.
    return std::shared_ptr<const Graph>(handle, key);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Reap adapters whose source graphs have been released (eviction,
    // Drop) so abandoned CSR snapshots don't accumulate between builds.
    for (auto it = flat_views_.begin(); it != flat_views_.end();) {
      it = it->second.owner.expired() ? flat_views_.erase(it) : std::next(it);
    }
    auto it = flat_views_.find(key);
    if (it != flat_views_.end()) {
      // Guard against a recycled Graph* address: the cached adapter is
      // only valid while the same ExtractedGraph is still alive.
      if (it->second.owner.lock() == handle) return it->second.view;
      flat_views_.erase(it);
    }
  }
  // Build outside the lock — materialization walks every edge of the
  // condensed representation. Concurrent callers may race to build the
  // same adapter; the first insert wins and the losers share it.
  auto built = std::make_shared<const CsrGraph>(CsrGraph::Build(*key));
  csr_builds_->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = flat_views_.try_emplace(key);
  if (inserted || it->second.owner.lock() != handle) {
    it->second = {handle, built};
  }
  return it->second.view;
}

void GraphService::RecordExtractionLatency(std::string_view datalog,
                                           double seconds,
                                           const obs::QueryProfile& profile) {
  request_us_->RecordSeconds(seconds);
  if (options_.slow_request_seconds <= 0 || options_.slow_log_capacity == 0 ||
      seconds < options_.slow_request_seconds) {
    return;
  }
  slow_requests_->Increment();
  SlowRequest entry;
  entry.datalog = std::string(datalog);
  entry.seconds = seconds;
  // The profile is empty (not captured) when observability was off during
  // the extraction; retain the slow request anyway — the timing and query
  // text are still actionable.
  if (!profile.empty()) {
    entry.profile = std::make_shared<const obs::QueryProfile>(profile);
  }
  std::lock_guard<std::mutex> lock(mu_);
  entry.sequence = slow_sequence_++;
  slow_log_.push_back(std::move(entry));
  while (slow_log_.size() > options_.slow_log_capacity) slow_log_.pop_front();
}

std::vector<SlowRequest> GraphService::SlowRequests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

std::vector<obs::MetricValue> GraphService::MetricsSnapshot() const {
  // Gauges mirror derived state (cache footprint, map sizes); refresh them
  // from the source of truth so the snapshot is current.
  {
    std::lock_guard<std::mutex> lock(mu_);
    flat_views_gauge_->Set(static_cast<int64_t>(flat_views_.size()));
    named_graphs_gauge_->Set(static_cast<int64_t>(names_.size()));
  }
  cache_bytes_gauge_->Set(static_cast<int64_t>(cache_.bytes()));
  cache_graphs_gauge_->Set(static_cast<int64_t>(cache_.size()));
  cache_evictions_gauge_->Set(static_cast<int64_t>(cache_.evictions()));
  return registry_.Snapshot();
}

ServiceStats GraphService::Stats() const {
  // Compatibility view over the registry: one consistent, uniformly
  // uint64_t snapshot (the counters are this instance's own, so they are
  // exact once its requests have quiesced).
  ServiceStats stats;
  stats.requests = requests_->Value();
  stats.cache_hits = cache_hits_->Value();
  stats.cold_extractions = cold_extractions_->Value();
  stats.coalesced = coalesced_->Value();
  stats.failed = failed_->Value();
  stats.uncacheable = uncacheable_->Value();
  stats.csr_builds = csr_builds_->Value();
  stats.slow_requests = slow_requests_->Value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.flat_views = flat_views_.size();
    stats.named_graphs = names_.size();
  }
  stats.evictions = cache_.evictions();
  stats.cache_bytes = cache_.bytes();
  stats.cache_graphs = cache_.size();
  stats.cache_budget_bytes = cache_.budget_bytes();
  stats.worker_threads = pool_.NumThreads();
  return stats;
}

}  // namespace graphgen::service
