#ifndef GRAPHGEN_SERVICE_GRAPH_CACHE_H_
#define GRAPHGEN_SERVICE_GRAPH_CACHE_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/sync.h"
#include "core/graphgen.h"

namespace graphgen::service {

/// A shared, immutable handle to an extracted graph. Clients, the named
/// registry, and the cache all hold the same instance; eviction or Drop
/// only releases a reference, never frees a graph a client still uses.
using GraphHandle = std::shared_ptr<const ExtractedGraph>;

/// Memory-budgeted LRU cache of extracted graphs, keyed by the canonical
/// (program, options) string from cache_key.h. This is the paper's §3.1
/// batching constraint made long-lived: the engine keeps as many condensed
/// graphs resident as fit the budget and recycles the least recently used
/// ones. Thread-safe; every method takes the internal lock.
class GraphCache {
 public:
  /// `budget_bytes` bounds the summed representation-aware footprint
  /// (Graph::MemoryFootprint().Total()) of resident entries. 0 = unlimited.
  explicit GraphCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// Returns the cached graph and marks it most recently used, or nullptr.
  [[nodiscard]] GraphHandle Get(const std::string& key);

  /// Inserts (or replaces) an entry and evicts LRU entries until the
  /// budget holds again. A graph whose footprint alone exceeds a non-zero
  /// budget is not cached at all (it would just evict everything else);
  /// returns false in that case. Callers that cache best-effort discard
  /// the result explicitly with (void).
  [[nodiscard]] bool Put(const std::string& key, GraphHandle graph);

  void Erase(const std::string& key);
  void Clear();

  /// Changes the byte budget and immediately evicts LRU entries until the
  /// new budget holds — down to an *empty* cache if even the single most
  /// recently used entry exceeds it (a shrunken budget must never pin an
  /// over-budget graph resident). 0 = unlimited.
  void SetBudget(size_t budget_bytes);

  size_t bytes() const;
  size_t size() const;
  size_t budget_bytes() const;
  /// Total entries evicted to make room since construction.
  uint64_t evictions() const;

  /// All four stats fields read under one lock acquisition. The
  /// field-by-field getters each lock separately, so reading them in
  /// sequence can interleave with a concurrent Put/eviction and report a
  /// torn view (bytes from before an eviction, evictions from after);
  /// consumers that publish the numbers together use this instead.
  struct StatsSnapshot {
    size_t bytes = 0;
    size_t entries = 0;
    size_t budget_bytes = 0;
    uint64_t evictions = 0;
  };
  StatsSnapshot Stats() const;

 private:
  struct Entry {
    GraphHandle graph;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  void EvictToBudgetLocked() REQUIRES(mu_);

  mutable Mutex mu_;
  size_t budget_bytes_ GUARDED_BY(mu_);
  size_t bytes_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  std::list<std::string> lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace graphgen::service

#endif  // GRAPHGEN_SERVICE_GRAPH_CACHE_H_
