#ifndef GRAPHGEN_SERVICE_GRAPH_SERVICE_H_
#define GRAPHGEN_SERVICE_GRAPH_SERVICE_H_

#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/graphgen.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "service/graph_cache.h"

namespace graphgen::service {

struct ServiceOptions {
  /// Budget for the extraction cache (summed representation-aware graph
  /// footprints, §3.1's "batches that fit in memory"). 0 = unlimited.
  size_t cache_budget_bytes = size_t{256} << 20;
  /// Worker threads serving ExtractAsync (0 = DefaultThreadCount()).
  size_t worker_threads = 0;
  /// Extraction options applied when a request does not pass its own.
  GraphGenOptions default_options;
  /// Cold extractions at least this slow land in the slow-request log
  /// with their full QueryProfile retained. <= 0 disables the log.
  double slow_request_seconds = 1.0;
  /// Ring-buffer capacity of the slow-request log (oldest evicted first).
  size_t slow_log_capacity = 32;
  /// Admission control: at most this many cold extractions run the
  /// pipeline concurrently (cache hits and coalesced waiters are never
  /// gated). 0 = unlimited (no admission control).
  size_t max_inflight_extractions = 0;
  /// How many extraction owners may wait in the FIFO admission queue
  /// before new arrivals are rejected with Status::Overloaded.
  size_t admission_queue_capacity = 16;
  /// Budget for the stale-graph store backing RequestOptions::allow_stale:
  /// every successful extraction is also remembered here, and a failing
  /// re-extraction of the same key can fall back to it. Survives
  /// ClearCache (that is its use case). 0 = unlimited.
  size_t stale_budget_bytes = size_t{64} << 20;
  /// Incremental extraction: capture the delta-patching state with every
  /// extraction, and advance behind-version cache entries by patching only
  /// the appended rows in (service.delta_patched) instead of a cold run.
  /// Non-append-safe changes (rebase, count rules, drift) fall back to a
  /// cold extraction (service.delta_fallback). Independent of this flag,
  /// every cache hit validates its version vector first — a mutated table
  /// never produces a stale hit (allow_stale keeps its meaning: it only
  /// answers *failing* re-extractions).
  bool incremental = true;
};

/// Per-request robustness knobs, orthogonal to GraphGenOptions (they
/// never enter the cache key: the same graph is the same graph whatever
/// deadline it was extracted under).
struct RequestOptions {
  /// Relative deadline for the whole request, including time spent queued
  /// for admission. <= 0 = none. Expiry surfaces as DeadlineExceeded.
  double deadline_seconds = 0;
  /// Transient-memory ceiling for the extraction pipeline (hash-join
  /// tables, DISTINCT sets, morsel buffers, assembly batches, CSR build
  /// arrays). 0 = unlimited. Tripping it surfaces as ResourceExhausted.
  size_t memory_limit_bytes = 0;
  /// When the pipeline fails (fault, deadline, memory, overload), serve
  /// the most recent successfully extracted graph for this key instead,
  /// if one exists. Counted in stats as stale_served.
  bool allow_stale = false;
  /// Cooperative cancellation: keep a copy, call RequestCancel(), and the
  /// request unwinds with Cancelled within a few morsel quanta.
  CancelToken cancel;
};

/// One row of List(): a graph the analyst has registered under a name.
struct NamedGraphInfo {
  std::string name;
  std::string representation;
  size_t active_vertices = 0;
  size_t virtual_nodes = 0;
  uint64_t stored_edges = 0;
  size_t footprint_bytes = 0;
};

/// Counters exposed by Stats() (monotonic except the gauge fields).
/// All fields are uint64_t so callers can print / diff them uniformly;
/// the snapshot is sourced from the service's MetricsRegistry in one pass.
struct ServiceStats {
  uint64_t requests = 0;          // Extract calls (sync + async)
  uint64_t cache_hits = 0;        // served from cache, no pipeline run
  uint64_t cold_extractions = 0;  // ran the full planner/executor pipeline
  uint64_t delta_patched = 0;     // behind-version entries advanced by patch
  uint64_t delta_fallback = 0;    // patch attempts that fell back to cold
  uint64_t coalesced = 0;         // waited on an identical in-flight request
  uint64_t failed = 0;            // requests that returned a non-OK status
  uint64_t evictions = 0;         // cache entries dropped for the budget
  uint64_t uncacheable = 0;       // graphs larger than the whole budget
  uint64_t csr_builds = 0;        // materialized-CSR adapters built
  uint64_t slow_requests = 0;     // cold extractions over the slow threshold
  uint64_t cancelled = 0;         // failures: caller cancelled
  uint64_t deadline_exceeded = 0;  // failures: deadline passed
  uint64_t overload_rejected = 0;  // failures: admission queue full
  uint64_t resource_exhausted = 0;  // failures: memory ceiling tripped
  uint64_t stale_served = 0;      // failures answered from the stale store
  uint64_t inflight_extractions = 0;  // gauge: pipelines running now
  uint64_t admission_queued = 0;      // gauge: owners waiting for a slot
  uint64_t flat_views = 0;        // gauge: resident CSR adapters
  uint64_t cache_bytes = 0;       // gauge: resident cache footprint
  uint64_t cache_graphs = 0;      // gauge: resident cache entries
  uint64_t named_graphs = 0;      // gauge: registry size
  uint64_t cache_budget_bytes = 0;
  uint64_t worker_threads = 0;
};

/// One retained slow request: what ran, how long it took, and the full
/// EXPLAIN ANALYZE profile captured while it ran (null when observability
/// was disabled during the extraction).
struct SlowRequest {
  std::string datalog;
  double seconds = 0;
  uint64_t sequence = 0;  // monotonically increasing admission order
  std::shared_ptr<const obs::QueryProfile> profile;
};

/// The serving layer of §3.1: a long-lived engine that owns a relational
/// database and answers repeated extraction/analysis requests from many
/// analysts. Wraps the one-shot GraphGen library call with
///  * a canonical-key extraction cache (GraphCache) so re-extracting the
///    same hidden graph is a lookup, not a pipeline run,
///  * single-flight coalescing — concurrent requests for the same key run
///    the pipeline once and share the result,
///  * a ThreadPool so different graphs extract concurrently, and
///  * a named-graph registry so analysts can pin, enumerate, and drop
///    result graphs independent of cache eviction.
/// All public methods are thread-safe. Returned GraphHandles are immutable
/// shared snapshots: safe to read from any thread, never invalidated by
/// eviction or Drop.
class GraphService {
 public:
  explicit GraphService(const rel::Database* db, ServiceOptions options = {});
  /// Mutable-database service: additionally enables Append(), the live
  /// ingest path that keeps cached graphs patchable.
  explicit GraphService(rel::Database* db, ServiceOptions options = {});
  ~GraphService();

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// Extracts the hidden graph `datalog` describes (or returns the cached
  /// instance). Blocks until the graph is available. The RequestOptions
  /// overloads add per-request deadline / memory ceiling / cancellation /
  /// stale-fallback without affecting what gets cached.
  Result<GraphHandle> Extract(std::string_view datalog);
  Result<GraphHandle> Extract(std::string_view datalog,
                              const GraphGenOptions& options);
  Result<GraphHandle> Extract(std::string_view datalog,
                              const GraphGenOptions& options,
                              const RequestOptions& request);

  /// Appends rows to a table of the owned database, serialized against
  /// in-flight extractions (writer side of db_mu_): extractions and cache
  /// freshness checks always see either the pre- or the post-append state,
  /// never a half-applied batch. Requires the mutable-database
  /// constructor; read-only services return InvalidArgument. Cached graphs
  /// are NOT invalidated eagerly — the next Extract sees the version-vector
  /// mismatch and patches (or re-extracts) then.
  Status Append(const std::string& table, const std::vector<rel::Row>& rows)
      EXCLUDES(db_mu_);

  /// Queues the extraction on the worker pool and returns immediately.
  /// The future always resolves — a task that throws resolves it to
  /// ExecutionError rather than terminating the worker.
  std::future<Result<GraphHandle>> ExtractAsync(std::string datalog);
  std::future<Result<GraphHandle>> ExtractAsync(std::string datalog,
                                                GraphGenOptions options);
  std::future<Result<GraphHandle>> ExtractAsync(std::string datalog,
                                                GraphGenOptions options,
                                                RequestOptions request);

  /// Extract + bind the result to `name` (rebinding a taken name replaces
  /// the old graph, like shell variable assignment).
  Result<GraphHandle> ExtractNamed(const std::string& name,
                                   std::string_view datalog);
  Result<GraphHandle> ExtractNamed(const std::string& name,
                                   std::string_view datalog,
                                   const GraphGenOptions& options);
  Result<GraphHandle> ExtractNamed(const std::string& name,
                                   std::string_view datalog,
                                   const GraphGenOptions& options,
                                   const RequestOptions& request);

  /// Binds an externally produced graph. Fails with kAlreadyExists if the
  /// name is taken and `overwrite` is false.
  Status Register(const std::string& name, GraphHandle graph,
                  bool overwrite = false);
  Result<GraphHandle> Lookup(const std::string& name) const;
  Status Drop(const std::string& name);
  /// Registry contents sorted by name.
  std::vector<NamedGraphInfo> List() const;

  /// Flat-adjacency analytics view of a handle's graph: the graph itself
  /// when it already exposes NeighborSpan (EXP), else a materialized CSR
  /// snapshot (CsrGraph) built once and cached alongside the graph, so
  /// repeated kernels on a condensed representation share one adapter.
  /// The returned pointer keeps the adapter alive independently of the
  /// cache. Adapters whose source graph has been released (evicted +
  /// unpinned) are reaped on the next FlatView call or ClearCache; their
  /// bytes are *not* charged against the extraction-cache budget — they
  /// are working state of active analyses, reported via Stats()
  /// (flat_views / csr_builds) rather than bounded by it.
  std::shared_ptr<const Graph> FlatView(const GraphHandle& handle);

  /// Drops every cached graph (named graphs stay pinned) and every
  /// cached flat view. The stale store survives — it exists precisely to
  /// answer allow_stale requests after the cache is gone.
  void ClearCache();

  /// Re-budgets the extraction cache at runtime (ops lever: shrink under
  /// memory pressure, grow for a heavy analysis session). Shrinking
  /// evicts immediately — to empty if even one resident graph exceeds the
  /// new budget. 0 = unlimited. Named/pinned graphs are unaffected.
  void SetCacheBudget(size_t budget_bytes);

  ServiceStats Stats() const;

  /// The per-service metrics registry backing Stats(). Counters stay
  /// exact per instance (they are not shared with the process-global
  /// registry); gauges are refreshed by MetricsSnapshot()/Stats().
  obs::MetricsRegistry& metrics() { return registry_; }

  /// Registry snapshot with the gauge metrics (cache footprint, resident
  /// views, registry size) refreshed first — the `stats` shell command
  /// and JSON exports read this.
  std::vector<obs::MetricValue> MetricsSnapshot() const;

  /// Retained slow requests, oldest first (bounded ring buffer; see
  /// ServiceOptions::slow_request_seconds / slow_log_capacity).
  std::vector<SlowRequest> SlowRequests() const;

  const rel::Database& db() const { return *db_; }
  const ServiceOptions& options() const { return options_; }

 private:
  /// A request being extracted right now; later arrivals with the same
  /// key block on `cv` instead of re-running the pipeline.
  struct Inflight {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    Status status GUARDED_BY(mu);
    GraphHandle graph GUARDED_BY(mu);
  };

  Result<GraphHandle> ExtractWithKey(std::string_view datalog,
                                     const GraphGenOptions& options,
                                     const RequestOptions& request);

  /// Admission control for cold-extraction owners: bounded concurrency
  /// with a FIFO wait queue. Returns OK once a slot is held (pair with
  /// ReleaseExtraction), Overloaded when the queue is full, or the
  /// context's Cancelled/DeadlineExceeded when the request dies queued.
  Status AdmitExtraction(const ExecContext& ctx) EXCLUDES(admit_mu_);
  void ReleaseExtraction() EXCLUDES(admit_mu_);
  /// True when `ticket` is at the head of the admission queue and a
  /// pipeline slot is free.
  bool AdmissionTurnLocked(uint64_t ticket) const REQUIRES(admit_mu_);

  /// Classifies a request failure into the per-cause counters and, when
  /// the request allows it, answers from the stale store instead.
  Result<GraphHandle> ResolveFailure(Status status, const std::string& key,
                                     const RequestOptions& request);

  /// True iff the cached entry still matches the database: per-table
  /// version-vector comparison when incremental state was captured, else
  /// the conservative whole-database tick check. Callers hold db_mu_
  /// (reader side) so Append cannot interleave with the comparison.
  bool IsFresh(const GraphHandle& handle) const REQUIRES_SHARED(db_mu_);

  const rel::Database* db_;
  /// Non-null only for the mutable-database constructor; Append's target.
  rel::Database* mutable_db_ = nullptr;
  const ServiceOptions options_;
  GraphGen engine_;
  GraphCache cache_;
  /// Last-known-good store for allow_stale: written on every successful
  /// extraction, read when a re-extraction of the same key fails.
  /// Deliberately not cleared by ClearCache.
  GraphCache stale_;

  /// One cached flat view: the CSR adapter plus a weak reference to the
  /// ExtractedGraph that owns the source Graph, so a recycled Graph*
  /// address can never serve a stale adapter.
  struct FlatViewEntry {
    std::weak_ptr<const ExtractedGraph> owner;
    std::shared_ptr<const Graph> view;
  };

  /// Records one finished cold extraction: request-latency histogram plus
  /// slow-request retention. Takes mu_ internally.
  void RecordExtractionLatency(std::string_view datalog, double seconds,
                               const obs::QueryProfile& profile);

  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_
      GUARDED_BY(mu_);
  std::map<std::string, GraphHandle> names_ GUARDED_BY(mu_);
  std::unordered_map<const Graph*, FlatViewEntry> flat_views_ GUARDED_BY(mu_);

  /// Per-instance registry so a service's counters are exact for that
  /// instance (tests assert precise values); engine-level metrics live in
  /// obs::MetricsRegistry::Global(). Counter/gauge pointers are resolved
  /// once in the constructor — registry entries are never invalidated.
  obs::MetricsRegistry registry_;
  obs::Counter* requests_;
  obs::Counter* cache_hits_;
  obs::Counter* cold_extractions_;
  obs::Counter* delta_patched_;
  obs::Counter* delta_fallback_;
  obs::Counter* coalesced_;
  obs::Counter* failed_;
  obs::Counter* uncacheable_;
  obs::Counter* csr_builds_;
  obs::Counter* slow_requests_;
  obs::Counter* cancelled_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* overload_rejected_;
  obs::Counter* resource_exhausted_;
  obs::Counter* stale_served_;
  obs::Gauge* inflight_gauge_;
  obs::Gauge* admission_queue_gauge_;
  obs::Gauge* cache_bytes_gauge_;
  obs::Gauge* cache_graphs_gauge_;
  obs::Gauge* cache_evictions_gauge_;
  obs::Gauge* flat_views_gauge_;
  obs::Gauge* named_graphs_gauge_;
  obs::Histogram* request_us_;

  /// Ring buffer, oldest at front.
  std::deque<SlowRequest> slow_log_ GUARDED_BY(mu_);
  uint64_t slow_sequence_ GUARDED_BY(mu_) = 0;

  /// Database consistency for live ingest: Append holds the writer side;
  /// extractions, patches, and freshness checks hold the reader side, so
  /// a pipeline never observes a half-applied batch. Lock ordering:
  /// db_mu_ is acquired *after* admission and never while holding mu_.
  mutable SharedMutex db_mu_;

  /// Admission state, under its own lock so queued owners never contend
  /// with cache lookups on mu_.
  mutable Mutex admit_mu_;
  CondVar admit_cv_;
  size_t inflight_extractions_ GUARDED_BY(admit_mu_) = 0;
  /// FIFO of waiting owner tickets.
  std::deque<uint64_t> admit_queue_ GUARDED_BY(admit_mu_);
  uint64_t admit_ticket_ GUARDED_BY(admit_mu_) = 0;

  // Last member: destroyed (and joined) first, so queued tasks finish
  // while the rest of the service is still alive.
  ThreadPool pool_;
};

}  // namespace graphgen::service

#endif  // GRAPHGEN_SERVICE_GRAPH_SERVICE_H_
