#ifndef GRAPHGEN_SERVICE_GRAPH_SERVICE_H_
#define GRAPHGEN_SERVICE_GRAPH_SERVICE_H_

#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/graphgen.h"
#include "service/graph_cache.h"

namespace graphgen::service {

struct ServiceOptions {
  /// Budget for the extraction cache (summed representation-aware graph
  /// footprints, §3.1's "batches that fit in memory"). 0 = unlimited.
  size_t cache_budget_bytes = size_t{256} << 20;
  /// Worker threads serving ExtractAsync (0 = DefaultThreadCount()).
  size_t worker_threads = 0;
  /// Extraction options applied when a request does not pass its own.
  GraphGenOptions default_options;
};

/// One row of List(): a graph the analyst has registered under a name.
struct NamedGraphInfo {
  std::string name;
  std::string representation;
  size_t active_vertices = 0;
  size_t virtual_nodes = 0;
  uint64_t stored_edges = 0;
  size_t footprint_bytes = 0;
};

/// Counters exposed by Stats() (monotonic except the gauge fields).
struct ServiceStats {
  uint64_t requests = 0;          // Extract calls (sync + async)
  uint64_t cache_hits = 0;        // served from cache, no pipeline run
  uint64_t cold_extractions = 0;  // ran the full planner/executor pipeline
  uint64_t coalesced = 0;         // waited on an identical in-flight request
  uint64_t failed = 0;            // requests that returned a non-OK status
  uint64_t evictions = 0;         // cache entries dropped for the budget
  uint64_t uncacheable = 0;       // graphs larger than the whole budget
  uint64_t csr_builds = 0;        // materialized-CSR adapters built
  size_t flat_views = 0;          // gauge: resident CSR adapters
  size_t cache_bytes = 0;         // gauge: resident cache footprint
  size_t cache_graphs = 0;        // gauge: resident cache entries
  size_t named_graphs = 0;        // gauge: registry size
  size_t cache_budget_bytes = 0;
  size_t worker_threads = 0;
};

/// The serving layer of §3.1: a long-lived engine that owns a relational
/// database and answers repeated extraction/analysis requests from many
/// analysts. Wraps the one-shot GraphGen library call with
///  * a canonical-key extraction cache (GraphCache) so re-extracting the
///    same hidden graph is a lookup, not a pipeline run,
///  * single-flight coalescing — concurrent requests for the same key run
///    the pipeline once and share the result,
///  * a ThreadPool so different graphs extract concurrently, and
///  * a named-graph registry so analysts can pin, enumerate, and drop
///    result graphs independent of cache eviction.
/// All public methods are thread-safe. Returned GraphHandles are immutable
/// shared snapshots: safe to read from any thread, never invalidated by
/// eviction or Drop.
class GraphService {
 public:
  explicit GraphService(const rel::Database* db, ServiceOptions options = {});
  ~GraphService();

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// Extracts the hidden graph `datalog` describes (or returns the cached
  /// instance). Blocks until the graph is available.
  Result<GraphHandle> Extract(std::string_view datalog);
  Result<GraphHandle> Extract(std::string_view datalog,
                              const GraphGenOptions& options);

  /// Queues the extraction on the worker pool and returns immediately.
  std::future<Result<GraphHandle>> ExtractAsync(std::string datalog);
  std::future<Result<GraphHandle>> ExtractAsync(std::string datalog,
                                                GraphGenOptions options);

  /// Extract + bind the result to `name` (rebinding a taken name replaces
  /// the old graph, like shell variable assignment).
  Result<GraphHandle> ExtractNamed(const std::string& name,
                                   std::string_view datalog);
  Result<GraphHandle> ExtractNamed(const std::string& name,
                                   std::string_view datalog,
                                   const GraphGenOptions& options);

  /// Binds an externally produced graph. Fails with kAlreadyExists if the
  /// name is taken and `overwrite` is false.
  Status Register(const std::string& name, GraphHandle graph,
                  bool overwrite = false);
  Result<GraphHandle> Lookup(const std::string& name) const;
  Status Drop(const std::string& name);
  /// Registry contents sorted by name.
  std::vector<NamedGraphInfo> List() const;

  /// Flat-adjacency analytics view of a handle's graph: the graph itself
  /// when it already exposes NeighborSpan (EXP), else a materialized CSR
  /// snapshot (CsrGraph) built once and cached alongside the graph, so
  /// repeated kernels on a condensed representation share one adapter.
  /// The returned pointer keeps the adapter alive independently of the
  /// cache. Adapters whose source graph has been released (evicted +
  /// unpinned) are reaped on the next FlatView call or ClearCache; their
  /// bytes are *not* charged against the extraction-cache budget — they
  /// are working state of active analyses, reported via Stats()
  /// (flat_views / csr_builds) rather than bounded by it.
  std::shared_ptr<const Graph> FlatView(const GraphHandle& handle);

  /// Drops every cached graph (named graphs stay pinned) and every
  /// cached flat view.
  void ClearCache();

  /// Re-budgets the extraction cache at runtime (ops lever: shrink under
  /// memory pressure, grow for a heavy analysis session). Shrinking
  /// evicts immediately — to empty if even one resident graph exceeds the
  /// new budget. 0 = unlimited. Named/pinned graphs are unaffected.
  void SetCacheBudget(size_t budget_bytes);

  ServiceStats Stats() const;
  const rel::Database& db() const { return *db_; }
  const ServiceOptions& options() const { return options_; }

 private:
  /// A request being extracted right now; later arrivals with the same
  /// key block on `cv` instead of re-running the pipeline.
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    GraphHandle graph;
  };

  Result<GraphHandle> ExtractWithKey(std::string_view datalog,
                                     const GraphGenOptions& options);

  const rel::Database* db_;
  const ServiceOptions options_;
  GraphGen engine_;
  GraphCache cache_;

  /// One cached flat view: the CSR adapter plus a weak reference to the
  /// ExtractedGraph that owns the source Graph, so a recycled Graph*
  /// address can never serve a stale adapter.
  struct FlatViewEntry {
    std::weak_ptr<const ExtractedGraph> owner;
    std::shared_ptr<const Graph> view;
  };

  mutable std::mutex mu_;  // guards inflight_, names_, flat_views_, counters
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::map<std::string, GraphHandle> names_;
  std::unordered_map<const Graph*, FlatViewEntry> flat_views_;
  uint64_t requests_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cold_extractions_ = 0;
  uint64_t coalesced_ = 0;
  uint64_t failed_ = 0;
  uint64_t uncacheable_ = 0;
  uint64_t csr_builds_ = 0;

  // Last member: destroyed (and joined) first, so queued tasks finish
  // while the rest of the service is still alive.
  ThreadPool pool_;
};

}  // namespace graphgen::service

#endif  // GRAPHGEN_SERVICE_GRAPH_SERVICE_H_
