#ifndef GRAPHGEN_SERVICE_GRAPH_SERVICE_H_
#define GRAPHGEN_SERVICE_GRAPH_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/graphgen.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "service/graph_cache.h"

namespace graphgen::service {

struct ServiceOptions {
  /// Budget for the extraction cache (summed representation-aware graph
  /// footprints, §3.1's "batches that fit in memory"). 0 = unlimited.
  size_t cache_budget_bytes = size_t{256} << 20;
  /// Worker threads serving ExtractAsync (0 = DefaultThreadCount()).
  size_t worker_threads = 0;
  /// Extraction options applied when a request does not pass its own.
  GraphGenOptions default_options;
  /// Cold extractions at least this slow land in the slow-request log
  /// with their full QueryProfile retained. <= 0 disables the log.
  double slow_request_seconds = 1.0;
  /// Ring-buffer capacity of the slow-request log (oldest evicted first).
  size_t slow_log_capacity = 32;
};

/// One row of List(): a graph the analyst has registered under a name.
struct NamedGraphInfo {
  std::string name;
  std::string representation;
  size_t active_vertices = 0;
  size_t virtual_nodes = 0;
  uint64_t stored_edges = 0;
  size_t footprint_bytes = 0;
};

/// Counters exposed by Stats() (monotonic except the gauge fields).
/// All fields are uint64_t so callers can print / diff them uniformly;
/// the snapshot is sourced from the service's MetricsRegistry in one pass.
struct ServiceStats {
  uint64_t requests = 0;          // Extract calls (sync + async)
  uint64_t cache_hits = 0;        // served from cache, no pipeline run
  uint64_t cold_extractions = 0;  // ran the full planner/executor pipeline
  uint64_t coalesced = 0;         // waited on an identical in-flight request
  uint64_t failed = 0;            // requests that returned a non-OK status
  uint64_t evictions = 0;         // cache entries dropped for the budget
  uint64_t uncacheable = 0;       // graphs larger than the whole budget
  uint64_t csr_builds = 0;        // materialized-CSR adapters built
  uint64_t slow_requests = 0;     // cold extractions over the slow threshold
  uint64_t flat_views = 0;        // gauge: resident CSR adapters
  uint64_t cache_bytes = 0;       // gauge: resident cache footprint
  uint64_t cache_graphs = 0;      // gauge: resident cache entries
  uint64_t named_graphs = 0;      // gauge: registry size
  uint64_t cache_budget_bytes = 0;
  uint64_t worker_threads = 0;
};

/// One retained slow request: what ran, how long it took, and the full
/// EXPLAIN ANALYZE profile captured while it ran (null when observability
/// was disabled during the extraction).
struct SlowRequest {
  std::string datalog;
  double seconds = 0;
  uint64_t sequence = 0;  // monotonically increasing admission order
  std::shared_ptr<const obs::QueryProfile> profile;
};

/// The serving layer of §3.1: a long-lived engine that owns a relational
/// database and answers repeated extraction/analysis requests from many
/// analysts. Wraps the one-shot GraphGen library call with
///  * a canonical-key extraction cache (GraphCache) so re-extracting the
///    same hidden graph is a lookup, not a pipeline run,
///  * single-flight coalescing — concurrent requests for the same key run
///    the pipeline once and share the result,
///  * a ThreadPool so different graphs extract concurrently, and
///  * a named-graph registry so analysts can pin, enumerate, and drop
///    result graphs independent of cache eviction.
/// All public methods are thread-safe. Returned GraphHandles are immutable
/// shared snapshots: safe to read from any thread, never invalidated by
/// eviction or Drop.
class GraphService {
 public:
  explicit GraphService(const rel::Database* db, ServiceOptions options = {});
  ~GraphService();

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// Extracts the hidden graph `datalog` describes (or returns the cached
  /// instance). Blocks until the graph is available.
  Result<GraphHandle> Extract(std::string_view datalog);
  Result<GraphHandle> Extract(std::string_view datalog,
                              const GraphGenOptions& options);

  /// Queues the extraction on the worker pool and returns immediately.
  std::future<Result<GraphHandle>> ExtractAsync(std::string datalog);
  std::future<Result<GraphHandle>> ExtractAsync(std::string datalog,
                                                GraphGenOptions options);

  /// Extract + bind the result to `name` (rebinding a taken name replaces
  /// the old graph, like shell variable assignment).
  Result<GraphHandle> ExtractNamed(const std::string& name,
                                   std::string_view datalog);
  Result<GraphHandle> ExtractNamed(const std::string& name,
                                   std::string_view datalog,
                                   const GraphGenOptions& options);

  /// Binds an externally produced graph. Fails with kAlreadyExists if the
  /// name is taken and `overwrite` is false.
  Status Register(const std::string& name, GraphHandle graph,
                  bool overwrite = false);
  Result<GraphHandle> Lookup(const std::string& name) const;
  Status Drop(const std::string& name);
  /// Registry contents sorted by name.
  std::vector<NamedGraphInfo> List() const;

  /// Flat-adjacency analytics view of a handle's graph: the graph itself
  /// when it already exposes NeighborSpan (EXP), else a materialized CSR
  /// snapshot (CsrGraph) built once and cached alongside the graph, so
  /// repeated kernels on a condensed representation share one adapter.
  /// The returned pointer keeps the adapter alive independently of the
  /// cache. Adapters whose source graph has been released (evicted +
  /// unpinned) are reaped on the next FlatView call or ClearCache; their
  /// bytes are *not* charged against the extraction-cache budget — they
  /// are working state of active analyses, reported via Stats()
  /// (flat_views / csr_builds) rather than bounded by it.
  std::shared_ptr<const Graph> FlatView(const GraphHandle& handle);

  /// Drops every cached graph (named graphs stay pinned) and every
  /// cached flat view.
  void ClearCache();

  /// Re-budgets the extraction cache at runtime (ops lever: shrink under
  /// memory pressure, grow for a heavy analysis session). Shrinking
  /// evicts immediately — to empty if even one resident graph exceeds the
  /// new budget. 0 = unlimited. Named/pinned graphs are unaffected.
  void SetCacheBudget(size_t budget_bytes);

  ServiceStats Stats() const;

  /// The per-service metrics registry backing Stats(). Counters stay
  /// exact per instance (they are not shared with the process-global
  /// registry); gauges are refreshed by MetricsSnapshot()/Stats().
  obs::MetricsRegistry& metrics() { return registry_; }

  /// Registry snapshot with the gauge metrics (cache footprint, resident
  /// views, registry size) refreshed first — the `stats` shell command
  /// and JSON exports read this.
  std::vector<obs::MetricValue> MetricsSnapshot() const;

  /// Retained slow requests, oldest first (bounded ring buffer; see
  /// ServiceOptions::slow_request_seconds / slow_log_capacity).
  std::vector<SlowRequest> SlowRequests() const;

  const rel::Database& db() const { return *db_; }
  const ServiceOptions& options() const { return options_; }

 private:
  /// A request being extracted right now; later arrivals with the same
  /// key block on `cv` instead of re-running the pipeline.
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    GraphHandle graph;
  };

  Result<GraphHandle> ExtractWithKey(std::string_view datalog,
                                     const GraphGenOptions& options);

  const rel::Database* db_;
  const ServiceOptions options_;
  GraphGen engine_;
  GraphCache cache_;

  /// One cached flat view: the CSR adapter plus a weak reference to the
  /// ExtractedGraph that owns the source Graph, so a recycled Graph*
  /// address can never serve a stale adapter.
  struct FlatViewEntry {
    std::weak_ptr<const ExtractedGraph> owner;
    std::shared_ptr<const Graph> view;
  };

  /// Records one finished cold extraction: request-latency histogram plus
  /// slow-request retention. Takes mu_ internally.
  void RecordExtractionLatency(std::string_view datalog, double seconds,
                               const obs::QueryProfile& profile);

  mutable std::mutex mu_;  // guards inflight_, names_, flat_views_, slow_log_
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::map<std::string, GraphHandle> names_;
  std::unordered_map<const Graph*, FlatViewEntry> flat_views_;

  /// Per-instance registry so a service's counters are exact for that
  /// instance (tests assert precise values); engine-level metrics live in
  /// obs::MetricsRegistry::Global(). Counter/gauge pointers are resolved
  /// once in the constructor — registry entries are never invalidated.
  obs::MetricsRegistry registry_;
  obs::Counter* requests_;
  obs::Counter* cache_hits_;
  obs::Counter* cold_extractions_;
  obs::Counter* coalesced_;
  obs::Counter* failed_;
  obs::Counter* uncacheable_;
  obs::Counter* csr_builds_;
  obs::Counter* slow_requests_;
  obs::Gauge* cache_bytes_gauge_;
  obs::Gauge* cache_graphs_gauge_;
  obs::Gauge* cache_evictions_gauge_;
  obs::Gauge* flat_views_gauge_;
  obs::Gauge* named_graphs_gauge_;
  obs::Histogram* request_us_;

  std::deque<SlowRequest> slow_log_;  // ring buffer, oldest at front
  uint64_t slow_sequence_ = 0;

  // Last member: destroyed (and joined) first, so queued tasks finish
  // while the rest of the service is still alive.
  ThreadPool pool_;
};

}  // namespace graphgen::service

#endif  // GRAPHGEN_SERVICE_GRAPH_SERVICE_H_
