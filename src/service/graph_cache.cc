#include "service/graph_cache.h"

namespace graphgen::service {

GraphHandle GraphCache::Get(const std::string& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.graph;
}

bool GraphCache::Put(const std::string& key, GraphHandle graph) {
  const size_t cost = graph == nullptr ? 0 : graph->FootprintBytes();
  MutexLock lock(mu_);
  if (budget_bytes_ > 0 && cost > budget_bytes_) return false;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(graph), cost, lru_.begin()};
  bytes_ += cost;
  EvictToBudgetLocked();
  return true;
}

void GraphCache::Erase(const std::string& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void GraphCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

void GraphCache::SetBudget(size_t budget_bytes) {
  MutexLock lock(mu_);
  budget_bytes_ = budget_bytes;
  EvictToBudgetLocked();
}

size_t GraphCache::bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

size_t GraphCache::budget_bytes() const {
  MutexLock lock(mu_);
  return budget_bytes_;
}

size_t GraphCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

uint64_t GraphCache::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

GraphCache::StatsSnapshot GraphCache::Stats() const {
  MutexLock lock(mu_);
  StatsSnapshot snap;
  snap.bytes = bytes_;
  snap.entries = entries_.size();
  snap.budget_bytes = budget_bytes_;
  snap.evictions = evictions_;
  return snap;
}

void GraphCache::EvictToBudgetLocked() {
  if (budget_bytes_ == 0) return;
  // Evicts from the LRU end until the budget holds — all the way to empty
  // if necessary. After a Put the loop stops before the fresh entry (Put
  // rejects any graph that alone exceeds the budget, so the front entry
  // always fits); after SetBudget shrinks below the last resident entry's
  // footprint, that entry is evicted too instead of staying pinned
  // over-budget forever.
  while (bytes_ > budget_bytes_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace graphgen::service
