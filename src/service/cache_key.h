#ifndef GRAPHGEN_SERVICE_CACHE_KEY_H_
#define GRAPHGEN_SERVICE_CACHE_KEY_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/graphgen.h"

namespace graphgen::service {

/// Canonical cache key for an extraction request. Two requests that must
/// produce an identical graph map to the same key:
///  * the Datalog program is parsed and re-printed from the AST, so
///    whitespace, comment, and rule-formatting differences disappear;
///  * only the options that influence the extracted graph participate
///    (e.g. Dedup1Algorithm is ignored unless the representation is
///    DEDUP-1, and thread counts never participate).
/// Returns kParseError for programs the DSL parser rejects, so malformed
/// requests fail before they reach the extraction pipeline.
Result<std::string> CanonicalCacheKey(std::string_view datalog,
                                      const GraphGenOptions& options);

/// The options half of the key, exposed for tests.
std::string OptionsFingerprint(const GraphGenOptions& options);

}  // namespace graphgen::service

#endif  // GRAPHGEN_SERVICE_CACHE_KEY_H_
