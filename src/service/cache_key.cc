#include "service/cache_key.h"

#include <sstream>

#include "datalog/parser.h"

namespace graphgen::service {

namespace {

/// Does this representation run one of the dedup/bitmap preprocessing
/// passes whose output depends on DedupOptions (ordering + seed)?
bool UsesDedupOptions(Representation r) {
  switch (r) {
    case Representation::kDedup1:
    case Representation::kDedup2:
    case Representation::kBitmap1:
    case Representation::kBitmap2:
    case Representation::kAuto:  // may resolve to BITMAP-2 (§6.5)
      return true;
    case Representation::kCDup:
    case Representation::kExp:
      return false;
  }
  return true;
}

}  // namespace

std::string OptionsFingerprint(const GraphGenOptions& options) {
  std::ostringstream out;
  out << "repr=" << RepresentationToString(options.representation)
      << ";lof=" << options.extract.large_output_factor
      << ";pre=" << (options.extract.preprocess ? 1 : 0);
  if (options.representation == Representation::kAuto) {
    out << ";expand=" << options.expand_threshold;
  }
  if (options.representation == Representation::kDedup1) {
    out << ";d1=" << Dedup1AlgorithmToString(options.dedup1_algorithm);
  }
  if (UsesDedupOptions(options.representation)) {
    out << ";ord=" << NodeOrderingToString(options.dedup.ordering)
        << ";seed=" << options.dedup.seed;
  }
  return out.str();
}

Result<std::string> CanonicalCacheKey(std::string_view datalog,
                                      const GraphGenOptions& options) {
  GRAPHGEN_ASSIGN_OR_RETURN(dsl::Program program, dsl::Parse(datalog));
  // \x1f (unit separator) cannot appear in either half.
  return program.ToString() + "\x1f" + OptionsFingerprint(options);
}

}  // namespace graphgen::service
