#include "vertexcentric/vertex_centric.h"

#include "common/parallel.h"

namespace graphgen {

VertexCentric::Stats VertexCentric::Run(Executor* executor,
                                        size_t max_supersteps) {
  Stats stats;
  const size_t n = graph_->NumVertices();
  const bool flat = UseSpanPath(*graph_, path_);
  // halted[v] != 0 means v voted to halt in the previous superstep and is
  // skipped until the run ends (no messages exist to wake vertices in the
  // GAS-style model).
  std::vector<uint8_t> halted(n, 0);

  // Edge-balanced ranges, computed once: executors must not mutate the
  // topology during a run, so degrees are stable across supersteps.
  std::vector<IndexRange> ranges;
  if (flat) {
    ranges = BalancedRanges(
        n,
        [this](size_t v) {
          return uint64_t{1} +
                 graph_->NeighborSpan(static_cast<NodeId>(v)).size();
        },
        threads_);
  }

  for (size_t step = 0; max_supersteps == 0 || step < max_supersteps; ++step) {
    std::atomic<uint64_t> active{0};
    const auto body = [&](size_t begin, size_t end) {
      uint64_t local_active = 0;
      VertexContext ctx;
      ctx.graph_ = graph_;
      ctx.superstep_ = step;
      ctx.flat_ = flat;
      for (size_t v = begin; v < end; ++v) {
        if (halted[v] || !graph_->VertexExists(static_cast<NodeId>(v))) {
          continue;
        }
        ctx.id_ = static_cast<NodeId>(v);
        ctx.halted_ = false;
        executor->Compute(ctx);
        if (ctx.halted_) {
          halted[v] = 1;
        } else {
          ++local_active;
        }
      }
      active.fetch_add(local_active, std::memory_order_relaxed);
    };
    if (flat) {
      ParallelForRanges(ranges, body);
    } else {
      ParallelFor(n, body, threads_);
    }
    stats.supersteps = step + 1;
    stats.compute_calls += active.load();
    bool keep_going = executor->AfterSuperstep(step);
    if (active.load() == 0 || !keep_going) break;
  }
  return stats;
}

}  // namespace graphgen
