#ifndef GRAPHGEN_VERTEXCENTRIC_VERTEX_CENTRIC_H_
#define GRAPHGEN_VERTEXCENTRIC_VERTEX_CENTRIC_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace graphgen {

class VertexCentric;

/// Per-vertex view handed to Executor::Compute. Follows the GAS-flavoured
/// model of §3.4: vertices communicate by directly reading their
/// neighbors' data (owned by the executor), not via message queues.
class VertexContext {
 public:
  NodeId id() const { return id_; }
  size_t superstep() const { return superstep_; }
  const Graph& graph() const { return *graph_; }

  /// Iterates over the vertex's distinct out-neighbors.
  void ForEachNeighbor(const std::function<void(NodeId)>& fn) const {
    graph_->ForEachNeighbor(id_, fn);
  }

  /// Marks this vertex inactive; the run terminates when every vertex has
  /// voted to halt in the same superstep.
  void VoteToHalt() { halted_ = true; }

 private:
  friend class VertexCentric;
  NodeId id_ = 0;
  size_t superstep_ = 0;
  const Graph* graph_ = nullptr;
  bool halted_ = false;
};

/// User programs implement Compute(), mirroring the paper's Executor
/// interface (§3.4).
class Executor {
 public:
  virtual ~Executor() = default;
  /// Called once per active vertex per superstep.
  virtual void Compute(VertexContext& ctx) = 0;
  /// Called after each superstep on the coordinator thread; may flip
  /// double buffers. Return false to terminate early.
  virtual bool AfterSuperstep(size_t superstep) {
    (void)superstep;
    return true;
  }
};

/// The multi-threaded vertex-centric coordinator (§3.4): splits the
/// graph's vertices into chunks, runs Compute on every active vertex each
/// superstep, tracks the superstep counter, and triggers termination when
/// all vertices have voted to halt.
class VertexCentric {
 public:
  struct Stats {
    size_t supersteps = 0;
    uint64_t compute_calls = 0;
  };

  explicit VertexCentric(const Graph* graph, size_t threads = 0)
      : graph_(graph), threads_(threads) {}

  /// Runs to halt or `max_supersteps` (0 = unlimited).
  Stats Run(Executor* executor, size_t max_supersteps = 0);

 private:
  const Graph* graph_;
  size_t threads_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_VERTEXCENTRIC_VERTEX_CENTRIC_H_
