#ifndef GRAPHGEN_VERTEXCENTRIC_VERTEX_CENTRIC_H_
#define GRAPHGEN_VERTEXCENTRIC_VERTEX_CENTRIC_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace graphgen {

class VertexCentric;

/// Per-vertex view handed to Executor::Compute. Follows the GAS-flavoured
/// model of §3.4: vertices communicate by directly reading their
/// neighbors' data (owned by the executor), not via message queues.
class VertexContext {
 public:
  NodeId id() const { return id_; }
  size_t superstep() const { return superstep_; }
  const Graph& graph() const { return *graph_; }

  /// True when the coordinator resolved the flat-adjacency fast path for
  /// this run; NeighborSpan() is then valid for every vertex.
  bool has_flat() const { return flat_; }

  /// This vertex's sorted distinct neighbors; valid only when has_flat().
  std::span<const NodeId> NeighborSpan() const {
    return graph_->NeighborSpan(id_);
  }

  /// Iterates over the vertex's distinct out-neighbors.
  void ForEachNeighbor(const std::function<void(NodeId)>& fn) const {
    graph_->ForEachNeighbor(id_, fn);
  }

  /// Iterates neighbors through the fastest path available: a plain span
  /// loop when the run is flat (zero virtual dispatch per edge), else the
  /// virtual callback path. `fn` is passed by reference, so the fallback
  /// builds its std::function around a reference_wrapper — no allocation,
  /// no copy. Executors should prefer this over ForEachNeighbor.
  template <typename Fn>
  void VisitNeighbors(Fn&& fn) const {
    if (flat_) {
      for (NodeId v : graph_->NeighborSpan(id_)) fn(v);
    } else {
      graph_->ForEachNeighbor(id_, std::function<void(NodeId)>(std::ref(fn)));
    }
  }

  /// Marks this vertex inactive; the run terminates when every vertex has
  /// voted to halt in the same superstep.
  void VoteToHalt() { halted_ = true; }

 private:
  friend class VertexCentric;
  NodeId id_ = 0;
  size_t superstep_ = 0;
  const Graph* graph_ = nullptr;
  bool flat_ = false;
  bool halted_ = false;
};

/// User programs implement Compute(), mirroring the paper's Executor
/// interface (§3.4).
class Executor {
 public:
  virtual ~Executor() = default;
  /// Called once per active vertex per superstep.
  virtual void Compute(VertexContext& ctx) = 0;
  /// Called after each superstep on the coordinator thread; may flip
  /// double buffers. Return false to terminate early.
  virtual bool AfterSuperstep(size_t superstep) {
    (void)superstep;
    return true;
  }
};

/// The multi-threaded vertex-centric coordinator (§3.4): splits the
/// graph's vertices into chunks, runs Compute on every active vertex each
/// superstep, tracks the superstep counter, and triggers termination when
/// all vertices have voted to halt.
///
/// When the graph exposes flat adjacency (and `path` permits), the
/// coordinator (a) marks every VertexContext flat so VisitNeighbors runs
/// the devirtualized span loop, and (b) splits vertices into edge-balanced
/// ranges — equal chunk *degree sums*, not equal chunk sizes — so skewed
/// degree distributions don't stall the superstep barrier on one thread.
class VertexCentric {
 public:
  struct Stats {
    size_t supersteps = 0;
    uint64_t compute_calls = 0;
  };

  explicit VertexCentric(const Graph* graph, size_t threads = 0,
                         TraversalPath path = TraversalPath::kAuto)
      : graph_(graph), threads_(threads), path_(path) {}

  /// Runs to halt or `max_supersteps` (0 = unlimited).
  Stats Run(Executor* executor, size_t max_supersteps = 0);

 private:
  const Graph* graph_;
  size_t threads_;
  TraversalPath path_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_VERTEXCENTRIC_VERTEX_CENTRIC_H_
