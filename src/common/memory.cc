#include "common/memory.h"

#include <cstdio>

namespace graphgen {

std::string FormatBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[unit]);
  return buf;
}

size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long pages_total = 0;
  long pages_resident = 0;
  int n = std::fscanf(f, "%ld %ld", &pages_total, &pages_resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<size_t>(pages_resident) * 4096;
}

}  // namespace graphgen
