#ifndef GRAPHGEN_COMMON_TIMER_H_
#define GRAPHGEN_COMMON_TIMER_H_

#include <chrono>
#include <functional>
#include <utility>

namespace graphgen {

/// Simple wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Anything that can absorb an elapsed-time measurement — obs::Histogram
/// implements this, and ScopedTimer feeds it, so timing call sites don't
/// depend on the obs layer.
class DurationSink {
 public:
  virtual ~DurationSink() = default;
  virtual void RecordSeconds(double seconds) = 0;
};

/// RAII stopwatch: measures from construction to destruction and delivers
/// the elapsed time to a double accumulator (+=), a DurationSink, or an
/// arbitrary callback. Replaces the WallTimer + printf copy-pasta in the
/// benches:
///
///   { ScopedTimer t(&build_seconds); BuildIndex(); }          // accumulate
///   { ScopedTimer t(histogram); RunQuery(); }                 // histogram
///   { ScopedTimer t([&](double s) { Report(s); }); ... }      // callback
class ScopedTimer {
 public:
  enum class Unit { kSeconds, kMillis };

  explicit ScopedTimer(double* accumulator, Unit unit = Unit::kSeconds)
      : accumulator_(accumulator), unit_(unit) {}
  explicit ScopedTimer(DurationSink* sink) : sink_(sink) {}
  explicit ScopedTimer(DurationSink& sink) : sink_(&sink) {}
  explicit ScopedTimer(std::function<void(double)> on_done)
      : on_done_(std::move(on_done)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const double s = timer_.Seconds();
    if (accumulator_ != nullptr) {
      *accumulator_ += unit_ == Unit::kMillis ? s * 1e3 : s;
    }
    if (sink_ != nullptr) sink_->RecordSeconds(s);
    if (on_done_) on_done_(s);
  }

  /// Elapsed time so far, without stopping the timer.
  double Seconds() const { return timer_.Seconds(); }

 private:
  WallTimer timer_;
  double* accumulator_ = nullptr;
  Unit unit_ = Unit::kSeconds;
  DurationSink* sink_ = nullptr;
  std::function<void(double)> on_done_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_TIMER_H_
