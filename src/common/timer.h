#ifndef GRAPHGEN_COMMON_TIMER_H_
#define GRAPHGEN_COMMON_TIMER_H_

#include <chrono>

namespace graphgen {

/// Simple wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_TIMER_H_
