#ifndef GRAPHGEN_COMMON_PARALLEL_H_
#define GRAPHGEN_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace graphgen {

/// Number of worker threads used by ParallelFor (defaults to hardware
/// concurrency; override with the GRAPHGEN_THREADS environment variable).
size_t DefaultThreadCount();

/// Runs fn(begin, end) over disjoint chunks of [0, n) on multiple threads
/// and joins. Falls back to a single inline call when n is small or
/// `threads` <= 1. Used by the preprocessing step (§4.2 Step 6), BITMAP-2
/// deduplication, and the vertex-centric framework.
void ParallelFor(size_t n,
                 const std::function<void(size_t begin, size_t end)>& fn,
                 size_t threads = 0);

/// Runs fn(thread_index) on `threads` threads and joins.
void ParallelInvoke(size_t threads, const std::function<void(size_t)>& fn);

/// A contiguous index range [begin, end).
struct IndexRange {
  size_t begin = 0;
  size_t end = 0;
};

/// Splits [0, n) into at most `threads` contiguous ranges whose *total
/// weight* is approximately equal, where weight(i) is the cost of index i
/// (e.g. a vertex's degree). Equal-index chunking stalls on skewed degree
/// distributions — one chunk owning the hubs runs long while the rest sit
/// idle — so the CSR kernels split by cumulative edge count instead.
/// Collapses to a single range when the total weight is too small to be
/// worth fanning out. The returned ranges always cover [0, n) exactly.
std::vector<IndexRange> BalancedRanges(
    size_t n, const std::function<uint64_t(size_t)>& weight,
    size_t threads = 0);

/// Runs fn(begin, end) for each precomputed range, one thread per range
/// (inline when there is at most one range). Pair with BalancedRanges for
/// edge-balanced data parallelism.
void ParallelForRanges(const std::vector<IndexRange>& ranges,
                       const std::function<void(size_t begin, size_t end)>& fn);

/// A fixed-size pool of persistent worker threads draining a FIFO task
/// queue. Unlike ParallelFor/ParallelInvoke (spawn-join helpers for data
/// parallelism), the pool serves long-lived request workloads: the graph
/// service submits one task per extraction request and clients block on
/// their own future, not on the whole batch.
class ThreadPool {
 public:
  /// Starts `threads` workers (0 = DefaultThreadCount()).
  explicit ThreadPool(size_t threads = 0);
  /// Drains outstanding tasks, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it runs on some worker thread. Must not be called
  /// after destruction has begun.
  void Submit(std::function<void()> task);

  /// Runs every task to completion, using idle pool workers
  /// opportunistically while the *calling thread also participates*.
  /// Because the caller drains the batch itself when no worker is free,
  /// RunBatch never deadlocks — even when invoked from inside a pool task
  /// (the extraction pipeline fans out per-rule queries on the same pool
  /// that runs the extraction request). Tasks must not throw.
  void RunBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until the queue is empty and every worker is idle.
  void Wait();

  size_t NumThreads() const { return workers_.size(); }
  /// Tasks enqueued but not yet started (approximate; racy by nature).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar work_available_;
  CondVar all_idle_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Written only by the constructor before any concurrency exists; read
  /// freely afterwards (NumThreads, RunBatch's helper sizing).
  std::vector<std::thread> workers_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_PARALLEL_H_
