#ifndef GRAPHGEN_COMMON_PARALLEL_H_
#define GRAPHGEN_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace graphgen {

/// Number of worker threads used by ParallelFor (defaults to hardware
/// concurrency; override with the GRAPHGEN_THREADS environment variable).
size_t DefaultThreadCount();

/// Runs fn(begin, end) over disjoint chunks of [0, n) on multiple threads
/// and joins. Falls back to a single inline call when n is small or
/// `threads` <= 1. Used by the preprocessing step (§4.2 Step 6), BITMAP-2
/// deduplication, and the vertex-centric framework.
void ParallelFor(size_t n,
                 const std::function<void(size_t begin, size_t end)>& fn,
                 size_t threads = 0);

/// Runs fn(thread_index) on `threads` threads and joins.
void ParallelInvoke(size_t threads, const std::function<void(size_t)>& fn);

/// A fixed-size pool of persistent worker threads draining a FIFO task
/// queue. Unlike ParallelFor/ParallelInvoke (spawn-join helpers for data
/// parallelism), the pool serves long-lived request workloads: the graph
/// service submits one task per extraction request and clients block on
/// their own future, not on the whole batch.
class ThreadPool {
 public:
  /// Starts `threads` workers (0 = DefaultThreadCount()).
  explicit ThreadPool(size_t threads = 0);
  /// Drains outstanding tasks, then stops and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it runs on some worker thread. Must not be called
  /// after destruction has begun.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void Wait();

  size_t NumThreads() const { return workers_.size(); }
  /// Tasks enqueued but not yet started (approximate; racy by nature).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_PARALLEL_H_
