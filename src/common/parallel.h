#ifndef GRAPHGEN_COMMON_PARALLEL_H_
#define GRAPHGEN_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace graphgen {

/// Number of worker threads used by ParallelFor (defaults to hardware
/// concurrency; override with the GRAPHGEN_THREADS environment variable).
size_t DefaultThreadCount();

/// Runs fn(begin, end) over disjoint chunks of [0, n) on multiple threads
/// and joins. Falls back to a single inline call when n is small or
/// `threads` <= 1. Used by the preprocessing step (§4.2 Step 6), BITMAP-2
/// deduplication, and the vertex-centric framework.
void ParallelFor(size_t n,
                 const std::function<void(size_t begin, size_t end)>& fn,
                 size_t threads = 0);

/// Runs fn(thread_index) on `threads` threads and joins.
void ParallelInvoke(size_t threads, const std::function<void(size_t)>& fn);

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_PARALLEL_H_
