#include "common/rng.h"

#include <cmath>

namespace graphgen {

uint64_t Rng::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method would be overkill; modulo bias is
  // negligible for our bounds (<< 2^32).
  return Next() % bound;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextNormal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  // Rejection-inversion sampling (Hormann & Derflinger).
  if (n <= 1) return 1;
  const double b = std::pow(2.0, 1.0 - s);
  while (true) {
    double u = NextDouble();
    double v = NextDouble();
    uint64_t x = static_cast<uint64_t>(std::pow(static_cast<double>(n) + 1.0, u));
    if (x < 1 || x > n) continue;
    double t = std::pow(1.0 + 1.0 / static_cast<double>(x), s);
    if (v * static_cast<double>(x) * (t - 1.0) / (b - 1.0) <=
        t / b) {
      return x;
    }
  }
}

}  // namespace graphgen
