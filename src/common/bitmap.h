#ifndef GRAPHGEN_COMMON_BITMAP_H_
#define GRAPHGEN_COMMON_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphgen {

/// A dynamically sized bit vector. Used by the BITMAP representations to
/// mark which out-edges of a virtual node a given source node may traverse.
class Bitmap {
 public:
  Bitmap() = default;
  /// Creates a bitmap with `size` bits, all initialized to `initial`.
  explicit Bitmap(size_t size, bool initial = false);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns bit `i`; `i` must be < size().
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool v) {
    if (v) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Sets every bit to `v`.
  void Fill(bool v);
  /// Grows (or shrinks) to `size` bits; new bits are zero.
  void Resize(size_t size);

  /// Number of set bits.
  size_t CountSet() const;
  /// True if no bit is set.
  bool AllZero() const;
  /// True if every bit is set.
  bool AllOne() const;

  /// Approximate heap usage in bytes.
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

  bool operator==(const Bitmap& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_BITMAP_H_
