#include "common/timer.h"

// Header-only; this translation unit exists so the target has a .cc per
// header and the header is verified self-contained.
