#include "common/bitmap.h"

#include <bit>

namespace graphgen {

namespace {
size_t WordsFor(size_t bits) { return (bits + 63) / 64; }
}  // namespace

Bitmap::Bitmap(size_t size, bool initial)
    : size_(size), words_(WordsFor(size), initial ? ~uint64_t{0} : 0) {
  if (initial && size_ % 64 != 0 && !words_.empty()) {
    // Keep unused high bits zero so CountSet()/AllOne() stay simple.
    words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
  }
}

void Bitmap::Fill(bool v) {
  for (auto& w : words_) w = v ? ~uint64_t{0} : 0;
  if (v && size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
  }
}

void Bitmap::Resize(size_t size) {
  size_ = size;
  words_.resize(WordsFor(size), 0);
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
  }
}

size_t Bitmap::CountSet() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool Bitmap::AllZero() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool Bitmap::AllOne() const { return CountSet() == size_; }

}  // namespace graphgen
