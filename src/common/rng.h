#ifndef GRAPHGEN_COMMON_RNG_H_
#define GRAPHGEN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace graphgen {

/// Deterministic, fast PRNG (splitmix64 core). All generators and property
/// tests take explicit seeds so every run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Normal sample via Box-Muller.
  double NextNormal(double mean, double stddev);

  /// Zipf-distributed integer in [1, n] with exponent s (rejection method).
  uint64_t NextZipf(uint64_t n, double s);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_RNG_H_
