#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace graphgen {

size_t DefaultThreadCount() {
  static size_t cached = [] {
    if (const char* env = std::getenv("GRAPHGEN_THREADS")) {
      long v = std::atol(env);
      if (v > 0) return static_cast<size_t>(v);
    }
    size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? size_t{4} : hw;
  }();
  return cached;
}

void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t threads) {
  if (threads == 0) threads = DefaultThreadCount();
  constexpr size_t kMinChunk = 1024;
  if (threads <= 1 || n < 2 * kMinChunk) {
    fn(0, n);
    return;
  }
  threads = std::min(threads, (n + kMinChunk - 1) / kMinChunk);
  const size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

void ParallelInvoke(size_t threads, const std::function<void(size_t)>& fn) {
  if (threads <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace graphgen
