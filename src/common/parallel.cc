#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

namespace graphgen {

size_t DefaultThreadCount() {
  static size_t cached = [] {
    if (const char* env = std::getenv("GRAPHGEN_THREADS")) {
      long v = std::atol(env);
      if (v > 0) return static_cast<size_t>(v);
    }
    size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? size_t{4} : hw;
  }();
  return cached;
}

void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t threads) {
  if (threads == 0) threads = DefaultThreadCount();
  constexpr size_t kMinChunk = 1024;
  if (threads <= 1 || n < 2 * kMinChunk) {
    fn(0, n);
    return;
  }
  threads = std::min(threads, (n + kMinChunk - 1) / kMinChunk);
  const size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

std::vector<IndexRange> BalancedRanges(
    size_t n, const std::function<uint64_t(size_t)>& weight, size_t threads) {
  if (n == 0) return {};
  if (threads == 0) threads = DefaultThreadCount();
  // Below this total weight the spawn/join cost outweighs the win; the
  // threshold mirrors ParallelFor's kMinChunk scale.
  constexpr uint64_t kMinTotalWeight = 2048;
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += weight(i);
  if (threads <= 1 || total < 2 * kMinTotalWeight) return {{0, n}};

  std::vector<IndexRange> ranges;
  ranges.reserve(threads);
  // Cut whenever the open range's weight reaches an even share of the
  // weight *not yet assigned* — recomputed per cut, so a single hub that
  // swallows most of the total still leaves the tail evenly split across
  // the remaining slots instead of serialized into one range.
  uint64_t remaining = total;
  uint64_t acc = 0;
  size_t begin = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += weight(i);
    const size_t slots_left = threads - ranges.size();
    if (slots_left > 1 && i + 1 < n &&
        acc >= (remaining + slots_left - 1) / slots_left) {
      ranges.push_back({begin, i + 1});
      begin = i + 1;
      remaining -= acc;
      acc = 0;
    }
  }
  ranges.push_back({begin, n});
  return ranges;
}

void ParallelForRanges(
    const std::vector<IndexRange>& ranges,
    const std::function<void(size_t begin, size_t end)>& fn) {
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    fn(ranges[0].begin, ranges[0].end);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(ranges.size());
  for (const IndexRange& r : ranges) {
    workers.emplace_back([&fn, r] { fn(r.begin, r.end); });
  }
  for (auto& w : workers) w.join();
}

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  // Shared by the caller and any helpers; helpers that start after the
  // batch has drained see next >= size and return immediately, so the
  // state must outlive this call (shared_ptr).
  struct BatchState {
    std::vector<std::function<void()>> tasks;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex mu;
    CondVar cv;
  };
  auto state = std::make_shared<BatchState>();
  state->tasks = std::move(tasks);
  const size_t total = state->tasks.size();
  auto drain = [state, total] {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      state->tasks[i]();
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        MutexLock lock(state->mu);
        state->cv.NotifyAll();
      }
    }
  };
  const size_t helpers = std::min(workers_.size(), total - 1);
  for (size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();
  MutexLock lock(state->mu);
  while (state->done.load(std::memory_order_acquire) != total) {
    state->cv.Wait(state->mu);
  }
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) all_idle_.Wait(mu_);
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_available_.Wait(mu_);
      // Drain the queue before honoring stop so submitted work completes.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // An exception escaping a thread body would terminate the process and
    // strand active_, hanging Wait(). Tasks report failure through their
    // own channel (the service's promise/Status), so drop anything thrown.
    try {
      task();
    } catch (...) {
    }
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.NotifyAll();
    }
  }
}

void ParallelInvoke(size_t threads, const std::function<void(size_t)>& fn) {
  if (threads <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace graphgen
