#ifndef GRAPHGEN_COMMON_FAULTPOINTS_H_
#define GRAPHGEN_COMMON_FAULTPOINTS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// Fault-injection harness: named fault points compiled into the pipeline's
/// allocation/stage boundaries, each triggerable by probability or
/// hit-count via the registry API or the GRAPHGEN_FAULTS env knob.
///
///   GRAPHGEN_FAULT_POINT("query.join.build");
///
/// expands to a single relaxed atomic load when the point is disarmed (the
/// bench smoke gate prices this at <1%); when armed it can fail (return a
/// non-OK Status from the enclosing function), throw std::bad_alloc, or
/// stall until disarmed — the last two exercise the exception-safety and
/// admission-control paths deterministically.
///
/// Env knob (parsed once, first registry use):
///   GRAPHGEN_FAULTS="<name>=<trigger>[!<action>][,...]"
///     trigger:  pF   fire with probability F (e.g. p0.01)
///               nN   fire on the Nth armed evaluation (e.g. n1)
///     action:   fail (default) | throw | stall
///   GRAPHGEN_FAULT_SEED=<uint64>   seed for the probability RNG
namespace graphgen::fault {

enum class Action : int { kFail = 0, kThrow = 1, kStall = 2 };

/// How an armed point decides to fire.
struct FaultSpec {
  Action action = Action::kFail;
  /// Probability mode: fire each evaluation with this probability (>0).
  double probability = 0.0;
  /// Hit-count mode: fire on exactly the Nth armed evaluation (1-based,
  /// >0). Takes precedence over probability when both are set.
  uint64_t fire_on_hit = 0;
};

/// One registered point. Stable address for the macro's function-local
/// static; all fields are atomics so arming races cleanly with hot loops.
struct FaultPoint {
  explicit FaultPoint(std::string n) : name(std::move(n)) {}
  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const std::string name;
  std::atomic<bool> armed{false};
  std::atomic<int> action{0};
  std::atomic<uint32_t> prob_ppm{0};   // probability * 1e6
  std::atomic<int64_t> countdown{-1};  // hit-count mode; fires at 1 -> 0
  std::atomic<uint64_t> hits{0};       // evaluations while armed
  std::atomic<uint64_t> fires{0};
};

enum class FireResult { kContinue, kFail };

/// Evaluates an armed point: kFail tells the macro to return a Status,
/// kThrow raises std::bad_alloc from here, kStall blocks until the point
/// is disarmed (30s safety cap), then continues.
FireResult Fire(FaultPoint& point);

/// One row of List().
struct FaultPointInfo {
  std::string name;
  bool armed = false;
  Action action = Action::kFail;
  double probability = 0.0;
  int64_t countdown = -1;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

class FaultRegistry {
 public:
  /// Process-wide singleton; first use parses GRAPHGEN_FAULTS /
  /// GRAPHGEN_FAULT_SEED.
  static FaultRegistry& Instance();

  /// Registers (or finds) a point. Called by the macro's function-local
  /// static, so each site pays this exactly once. A pending spec for the
  /// name (env knob, or Arm() before the site first executed) is applied.
  FaultPoint& GetPoint(std::string_view name);

  /// Arms a point. Unregistered names are remembered and armed when the
  /// site first executes.
  void Arm(std::string_view name, const FaultSpec& spec);
  /// Disarms one point (stalled evaluations resume). No-op if unknown.
  void Disarm(std::string_view name);
  /// Disarms everything, clears pending specs, releases stalls.
  void DisarmAll();

  /// Registered points, sorted by name.
  std::vector<FaultPointInfo> List() const;
  /// Registered names, sorted (the sweep test iterates this to fixpoint).
  std::vector<std::string> Names() const;

  uint64_t hits(std::string_view name) const;
  uint64_t fires(std::string_view name) const;

  /// Seed for the probability RNG (also GRAPHGEN_FAULT_SEED).
  void SetSeed(uint64_t seed);
  uint64_t seed() const;

  /// Parses "name=trigger[!action]" into a spec; used by the env knob and
  /// the shell `faults arm` command.
  static Status ParseSpec(std::string_view spec_text, FaultSpec* out);

 private:
  friend FireResult Fire(FaultPoint& point);  // stall waits on the cv
  FaultRegistry();
  struct Impl;
  Impl* impl_;  // leaked singleton state: fault points outlive everything
};

}  // namespace graphgen::fault

/// The site macro. Disarmed cost: one function-local-static guard check
/// (branch on an already-initialized flag) plus one relaxed atomic load.
/// Must appear in a function returning Status or Result<T>.
#define GRAPHGEN_FAULT_POINT(name)                                     \
  do {                                                                 \
    static ::graphgen::fault::FaultPoint& gg_fault_point =             \
        ::graphgen::fault::FaultRegistry::Instance().GetPoint(name);   \
    if (gg_fault_point.armed.load(std::memory_order_relaxed)) {        \
      if (::graphgen::fault::Fire(gg_fault_point) ==                   \
          ::graphgen::fault::FireResult::kFail) {                      \
        return ::graphgen::Status::Internal(                           \
            std::string("fault injected: ") + (name));                 \
      }                                                                \
    }                                                                  \
  } while (0)

#endif  // GRAPHGEN_COMMON_FAULTPOINTS_H_
