#ifndef GRAPHGEN_COMMON_HASH_H_
#define GRAPHGEN_COMMON_HASH_H_

#include <cstdint>

namespace graphgen {

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash for raw integer
/// keys and dictionary codes. Shared by the typed join/DISTINCT kernels
/// (query/executor.cc) and the extractor's flat key tables
/// (planner/extractor.cc). No output-visible state depends on the exact
/// mixing (probe order and insertion order fix every result), so the
/// function may evolve — in this one place.
inline uint64_t MixInt64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_HASH_H_
