#ifndef GRAPHGEN_COMMON_SYNC_H_
#define GRAPHGEN_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Annotated synchronization primitives.
///
/// Every lock in the codebase goes through these wrappers instead of the
/// bare std:: types so that Clang's -Wthread-safety analysis can prove, at
/// compile time, that every GUARDED_BY field is only touched with its lock
/// held, that *Locked() helpers are only called under the right mutex, and
/// that no path double-acquires or leaks a capability. Under GCC (which has
/// no thread-safety analysis) the attribute macros expand to nothing and
/// the wrappers compile down to the std:: types they hold.
///
/// Invariant (enforced by tools/lint_invariants.py): no file in src/ other
/// than this one names std::mutex / std::shared_mutex /
/// std::condition_variable or their lock guards directly.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define GRAPHGEN_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef GRAPHGEN_THREAD_ANNOTATION_
#define GRAPHGEN_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// The capability itself (a lockable type).
#define CAPABILITY(x) GRAPHGEN_THREAD_ANNOTATION_(capability(x))
/// An RAII type that acquires in its constructor, releases in its destructor.
#define SCOPED_CAPABILITY GRAPHGEN_THREAD_ANNOTATION_(scoped_lockable)
/// Field may only be read/written with the named mutex held.
#define GUARDED_BY(x) GRAPHGEN_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee (not the pointer) is protected by the named mutex.
#define PT_GUARDED_BY(x) GRAPHGEN_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Caller must hold the mutex (exclusively) to call this function.
#define REQUIRES(...) \
  GRAPHGEN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Caller must hold the mutex at least shared to call this function.
#define REQUIRES_SHARED(...) \
  GRAPHGEN_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Function acquires the mutex and returns with it held.
#define ACQUIRE(...) \
  GRAPHGEN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  GRAPHGEN_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function releases a mutex the caller held on entry.
#define RELEASE(...) \
  GRAPHGEN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  GRAPHGEN_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Function acquires the mutex only when it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  GRAPHGEN_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))
/// Caller must NOT hold the mutex (deadlock guard for self-calling APIs).
#define EXCLUDES(...) GRAPHGEN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Escape hatch for code the analysis cannot follow; use sparingly and
/// leave a comment saying why at each site.
#define NO_THREAD_SAFETY_ANALYSIS \
  GRAPHGEN_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace graphgen {

class CondVar;

/// Annotated exclusive mutex. Method names are capitalized (Abseil idiom)
/// so locked regions read differently from the std:: API and the analysis
/// attributes have somewhere to live.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated reader/writer mutex for read-mostly state. No current user —
/// it exists so the next read-heavy structure (ROADMAP: incremental
/// extraction's table-version map) starts annotated instead of importing
/// std::shared_mutex and escaping the analysis.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (the only way locks are taken outside
/// CondVar waits).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_SHARED() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Waits take the Mutex
/// the caller already holds (REQUIRES), so the analysis checks the classic
/// condvar contract — wait only under the lock that guards the predicate.
///
/// Deliberately predicate-less: Clang analyzes a wait-predicate lambda as
/// a separate function with no held capabilities, so `cv.wait(lock, [&]{
/// return guarded_field; })` warns even when correct. Call sites spell the
/// loop instead:
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, reacquires before returning.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Wait with a relative timeout; spurious wakeups and timeouts look the
  /// same to the caller, who re-checks the predicate either way.
  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait_for(lk, timeout);
    lk.release();
  }

  /// Wait until an absolute deadline (any clock).
  template <typename Clock, typename Duration>
  void WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait_until(lk, deadline);
    lk.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_SYNC_H_
