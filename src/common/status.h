#ifndef GRAPHGEN_COMMON_STATUS_H_
#define GRAPHGEN_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace graphgen {

/// Error categories used across the library (Arrow/RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kPlanError,
  kExecutionError,
  kUnsupported,
  kOutOfRange,
  kInternal,
  /// The caller cancelled the request via its CancelToken; the pipeline
  /// unwound cooperatively at the next morsel/stage boundary.
  kCancelled,
  /// The request's deadline passed while it was queued or running.
  kDeadlineExceeded,
  /// The request's transient-memory budget (MemoryBudget) was exhausted.
  kResourceExhausted,
  /// The service's admission queue is full; retry later.
  kOverloaded,
};

/// Returns a short human-readable name for a status code ("Parse error", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Functions that can fail return a
/// Status (or a Result<T>, below) instead of throwing; this keeps failure
/// paths explicit at call sites.
///
/// The class is [[nodiscard]]: silently dropping a returned Status is a
/// build error under -Werror=unused-result (set unconditionally in the
/// root CMakeLists). The rare call site that genuinely cannot act on a
/// failure writes `(void)Fn();` with a comment saying why that's safe.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Moves the value out with
/// ValueOrDie()/operator*; check ok() first. [[nodiscard]] for the same
/// reason as Status: an unexamined Result hides the failure inside it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& { return *value_; }
  T& ValueOrDie() & { return *value_; }
  T&& ValueOrDie() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the current function.
#define GRAPHGEN_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::graphgen::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value into `lhs`.
#define GRAPHGEN_ASSIGN_OR_RETURN(lhs, expr)    \
  auto GRAPHGEN_CONCAT_(result_, __LINE__) = (expr);            \
  if (!GRAPHGEN_CONCAT_(result_, __LINE__).ok())                \
    return GRAPHGEN_CONCAT_(result_, __LINE__).status();        \
  lhs = std::move(GRAPHGEN_CONCAT_(result_, __LINE__)).ValueOrDie()

#define GRAPHGEN_CONCAT_INNER_(a, b) a##b
#define GRAPHGEN_CONCAT_(a, b) GRAPHGEN_CONCAT_INNER_(a, b)

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_STATUS_H_
