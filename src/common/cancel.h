#ifndef GRAPHGEN_COMMON_CANCEL_H_
#define GRAPHGEN_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "common/sync.h"

namespace graphgen {

/// A shared cancellation flag. Copies of a token observe the same flag, so
/// the caller keeps one copy and hands another to the pipeline; requesting
/// cancellation is visible to every morsel loop on the next boundary check.
/// A default-constructed token is a *null* token: it can never be cancelled
/// and checking it is a single pointer test. Thread-safe.
class CancelToken {
 public:
  CancelToken() = default;

  /// A token whose flag can actually be raised.
  static CancelToken Cancellable() {
    CancelToken t;
    t.state_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Raises the flag. No-op on a null token.
  void RequestCancel() const {
    if (state_) state_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool CancelRequested() const {
    return state_ && state_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancellable() const { return state_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Per-request transient-memory accounting gate. The big allocators in the
/// pipeline (hash-join tables, first-occurrence sets, morsel buffers, CSR
/// build arrays, output tuple vectors) charge their sizes *before*
/// allocating; when a charge would push usage past the limit it is refunded
/// and the operator unwinds with Status::ResourceExhausted instead of
/// letting the process OOM. limit 0 = track only, never fail. Thread-safe;
/// charges from parallel workers interleave on relaxed atomics.
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t limit_bytes) : limit_(limit_bytes) {}

  /// Charges `bytes` against the budget. On failure the charge is rolled
  /// back and the returned status names the allocator that tripped it.
  [[nodiscard]] Status TryCharge(size_t bytes, std::string_view what);

  /// Refunds a previous charge (operator-scope scratch that was freed).
  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_; }

 private:
  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// The request context threaded through ExtractOptions -> ExecOptions into
/// every operator: a cancel flag, an absolute deadline, and a transient-
/// memory budget. Copies share state (shared_ptr / time_point by value);
/// a default ExecContext is free to check — no clock read, no atomics.
struct ExecContext {
  CancelToken cancel;
  /// Absolute steady-clock deadline; meaningful only when has_deadline.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  std::shared_ptr<MemoryBudget> budget;

  /// Derives the deadline from a relative timeout (<= 0 = none).
  void SetDeadlineAfter(double seconds) {
    if (seconds <= 0) return;
    has_deadline = true;
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(seconds));
  }

  [[nodiscard]] bool DeadlineExpired() const {
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }

  /// The morsel-boundary poll: OK, Cancelled, or DeadlineExceeded. The
  /// fast path (null token, no deadline) is two predictable branches.
  [[nodiscard]] Status Check() const {
    if (cancel.CancelRequested()) {
      return Status::Cancelled("request cancelled by caller");
    }
    if (DeadlineExpired()) {
      return Status::DeadlineExceeded("request deadline passed");
    }
    return Status::OK();
  }

  /// Charges `bytes` against the budget (no-op without one). A failed
  /// charge also bumps the global `query.mem_limit_hits` counter.
  [[nodiscard]] Status Charge(size_t bytes, std::string_view what) const;

  void Release(size_t bytes) const {
    if (budget) budget->Release(bytes);
  }
};

/// RAII charge for operator-scope scratch (join build arrays, hash
/// vectors): acquired at the allocation site, refunded on scope exit so a
/// failed or cancelled operator never leaks budget.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ~ScopedCharge() { Reset(); }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ScopedCharge(ScopedCharge&& other) noexcept
      : ctx_(other.ctx_), bytes_(other.bytes_) {
    other.ctx_ = nullptr;
    other.bytes_ = 0;
  }

  [[nodiscard]] Status Acquire(const ExecContext& ctx, size_t bytes,
                               std::string_view what) {
    GRAPHGEN_RETURN_NOT_OK(ctx.Charge(bytes, what));
    Reset();
    ctx_ = &ctx;
    bytes_ = bytes;
    return Status::OK();
  }

  /// Folds `more` bytes that were already charged through the same
  /// context into this lease, so one Reset refunds them together.
  void Grow(size_t more) {
    if (ctx_ != nullptr) bytes_ += more;
  }

  void Reset() {
    if (ctx_ != nullptr && bytes_ > 0) ctx_->Release(bytes_);
    ctx_ = nullptr;
    bytes_ = 0;
  }

 private:
  const ExecContext* ctx_ = nullptr;
  size_t bytes_ = 0;
};

/// Failure slot for parallel regions: workers can't return a Status out of
/// a ParallelFor lambda, so the first failure parks its Status here and
/// every worker polls Failed() at morsel boundaries to unwind early. The
/// caller propagates Take() after the region joins.
class AbortSlot {
 public:
  [[nodiscard]] bool Failed() const {
    return failed_.load(std::memory_order_acquire);
  }

  void Fail(Status status) {
    MutexLock lock(mu_);
    if (!failed_.load(std::memory_order_relaxed)) {
      status_ = std::move(status);
      failed_.store(true, std::memory_order_release);
    }
  }

  /// OK unless a worker failed; the first failure wins.
  [[nodiscard]] Status Take() const {
    if (!Failed()) return Status::OK();
    MutexLock lock(mu_);
    return status_;
  }

  /// Convenience poll for worker loops: checks the slot, then the context;
  /// on a context failure parks it. Returns false when the worker should
  /// unwind.
  [[nodiscard]] bool Continue(const ExecContext& ctx) {
    if (Failed()) return false;
    Status st = ctx.Check();
    if (st.ok()) return true;
    Fail(std::move(st));
    return false;
  }

 private:
  std::atomic<bool> failed_{false};
  mutable Mutex mu_;
  /// The parked failure; `failed_` (atomic, release-published after the
  /// write) is the lock-free fast-path check, the value itself is only
  /// touched under mu_.
  Status status_ GUARDED_BY(mu_);
};

/// How many rows a tight per-row loop processes between cooperative
/// cancellation polls. Coarse enough that the poll (two branches, a clock
/// read only when a deadline is set) vanishes, fine enough that cancel
/// latency is a few morsel quanta even on the serial engine.
inline constexpr size_t kCancelStrideRows = size_t{1} << 13;

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_CANCEL_H_
