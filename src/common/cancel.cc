#include "common/cancel.h"

#include <string>

#include "obs/metrics.h"

namespace graphgen {

Status MemoryBudget::TryCharge(size_t bytes, std::string_view what) {
  size_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
  size_t now = prev + bytes;
  if (limit_ != 0 && now > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        std::string(what) + " needs " + std::to_string(bytes) +
        " bytes; request memory budget " + std::to_string(limit_) +
        " has " + std::to_string(limit_ > prev ? limit_ - prev : 0) +
        " left");
  }
  // Racy max is fine: peak is advisory (stats), not a gate.
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status ExecContext::Charge(size_t bytes, std::string_view what) const {
  if (budget == nullptr) return Status::OK();
  Status st = budget->TryCharge(bytes, what);
  if (!st.ok()) {
    // The one engine-level counter the service can't see from its own
    // registry: how often the memory ceiling actually fired.
    static obs::Counter* hits =
        obs::MetricsRegistry::Global().GetCounter("query.mem_limit_hits");
    hits->Increment();
  }
  return st;
}

}  // namespace graphgen
