#ifndef GRAPHGEN_COMMON_MEMORY_H_
#define GRAPHGEN_COMMON_MEMORY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace graphgen {

/// Heap bytes held by a vector (capacity-based).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Heap bytes held by a vector of vectors, including the inner buffers.
template <typename T>
size_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  size_t total = v.capacity() * sizeof(std::vector<T>);
  for (const auto& inner : v) total += inner.capacity() * sizeof(T);
  return total;
}

/// Formats a byte count as a human-readable string ("1.25 GB").
std::string FormatBytes(size_t bytes);

/// Current resident set size of the process in bytes (Linux /proc; returns 0
/// if unavailable). Used by the large-dataset benchmark harness to report
/// memory like Table 3 of the paper.
size_t CurrentRssBytes();

}  // namespace graphgen

#endif  // GRAPHGEN_COMMON_MEMORY_H_
