#ifndef GRAPHGEN_COMMON_SIMD_H_
#define GRAPHGEN_COMMON_SIMD_H_

/// Runtime-dispatched SIMD kernels for the extraction hot loops.
///
/// Every kernel here has two implementations — a portable scalar loop and
/// an AVX2 body compiled via function target attributes (no global -mavx2
/// flag) — selected once per process by `ActiveTier()`: a cached cpuid
/// check overridable with `GRAPHGEN_SIMD=off|scalar|avx2` (off and scalar
/// are synonyms; avx2 silently degrades to scalar when the CPU or build
/// lacks it). The contract is *bitwise parity*: for every input, both
/// tiers produce identical output bytes, so the extraction parity/fuzz
/// suites double as the correctness oracle for the vector paths.
///
/// The predicate kernels work on the scan's byte-mask representation
/// (`keep[i] &= verdict(i)` over 0/1 bytes) with the NULL-bitmap merge
/// folded in: NULL cells take the precompiled `null_match` verdict, and
/// typed arrays hold zero placeholders at NULL positions so lanes are
/// always safe to read.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>  // SSE2 (baseline on x86-64) for the tag probes
#define GRAPHGEN_SIMD_X86_64 1
#endif

namespace graphgen::simd {

// ------------------------------------------------------------ dispatch

enum class Tier : int { kScalar = 0, kAvx2 = 1 };

/// The dispatch tier in effect, resolved once (env override, then cpuid)
/// and cached. Thread-safe.
Tier ActiveTier();

/// "scalar" or "avx2".
const char* TierName();

/// Human-readable tier plus why it was chosen, e.g.
/// "avx2 (runtime cpu dispatch)" or "scalar (GRAPHGEN_SIMD=off)".
const char* TierDescription();

/// True when the AVX2 kernels are compiled in and the CPU supports them.
bool Avx2Available();

/// Test hook: pins the dispatch tier (kAvx2 requests degrade to scalar
/// when unavailable). Not for use on concurrent query traffic.
void SetTierForTesting(Tier tier);

/// Test hook: drops the pin and re-resolves from env + cpuid.
void ResetTierForTesting();

// -------------------------------------------- scan predicate mask kernels

/// Verdict shapes over an int64 column after the compile step reduced the
/// scalar predicate semantics (Value promotion through double for
/// ordering, exact int64 equality) to pure int64 compares:
///   kLe      x <= bound
///   kGe      x >= bound
///   kEq      x == eq
///   kNe      x != eq
///   kLeOrEq  x <= bound || x == eq   (<= with a representability gap)
///   kGeOrEq  x >= bound || x == eq
enum class I64MaskOp : uint8_t { kLe, kGe, kEq, kNe, kLeOrEq, kGeOrEq };

/// Verdict shapes over a double column; IEEE-ordered except kNe, which is
/// true for NaN cells (scalar `!(x == c)`).
enum class F64MaskOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

/// keep[i] &= verdict(data[i]) over [0, n), honoring `nulls` (NULL cells
/// verdict `null_match`; nulls may be nullptr). Bitwise-identical across
/// tiers.
void AndMaskI64(Tier tier, I64MaskOp op, const int64_t* data, int64_t bound,
                int64_t eq, const uint8_t* nulls, bool null_match,
                uint8_t* keep, size_t n);

/// keep[i] &= verdict(data[i]) for double columns.
void AndMaskF64(Tier tier, F64MaskOp op, const double* data, double bound,
                const uint8_t* nulls, bool null_match, uint8_t* keep,
                size_t n);

/// keep[i] &= table[codes[i]] for dictionary columns, honoring nulls the
/// same way (NULL placeholders store code 0, so the gather is always
/// safe). `table` holds one 0/1 verdict per dictionary code, widened to
/// 32 bits so the vector path can gather it directly.
void AndMaskCodes(Tier tier, const uint32_t* codes, const uint32_t* table,
                  const uint8_t* nulls, bool null_match, uint8_t* keep,
                  size_t n);

// --------------------------------------- join probe-code translation

/// Batched probe-side dictionary-code translation for dict⋈dict hash
/// joins: for each probe row i in [0, n),
///   id   = tuples[i * stride + slot]       (the row's base-table row id)
///   code = codes[id]
///   out[i] = nulls-or-missing ? -1 : trans[code]
/// `trans` maps probe codes to build codes (-1 = absent from the build
/// dictionary). The vector path runs the three chained gathers 8 lanes at
/// a time; rows with a NULL mask entry take -1 exactly like the scalar
/// key extractor. `max_row` is the probe base table's row count — the
/// vector path needs every gathered index to fit in a signed 32-bit lane
/// and falls back to scalar otherwise. Returns true when the vector path
/// handled the bulk of the range (callers record the dispatch decision).
bool TranslateCodes(Tier tier, const uint32_t* tuples, size_t stride,
                    size_t slot, const uint32_t* codes, const int32_t* trans,
                    const uint8_t* nulls, size_t max_row, int32_t* out,
                    size_t n);

// --------------------------------- predicate threshold precomputation

/// Largest int64 x with (double)x < bound, or nullopt when none exists
/// (bound <= -2^63 or NaN). int64→double conversion is monotone, so
/// `(double)x < bound` is exactly `x <= *MaxInt64WithDoubleLess(bound)`.
inline std::optional<int64_t> MaxInt64WithDoubleLess(double bound) {
  if (std::isnan(bound)) return std::nullopt;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  if (!(static_cast<double>(lo) < bound)) return std::nullopt;
  if (static_cast<double>(hi) < bound) return hi;
  // Invariant: predicate(lo) true, predicate(hi) false.
  while (hi - 1 > lo) {
    const int64_t mid = lo + static_cast<int64_t>(
        (static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo)) / 2);
    if (static_cast<double>(mid) < bound) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Smallest int64 x with (double)x > bound, or nullopt when none exists.
/// `(double)x > bound` is exactly `x >= *MinInt64WithDoubleGreater(bound)`.
inline std::optional<int64_t> MinInt64WithDoubleGreater(double bound) {
  if (std::isnan(bound)) return std::nullopt;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  if (!(static_cast<double>(hi) > bound)) return std::nullopt;
  if (static_cast<double>(lo) > bound) return lo;
  // Invariant: predicate(lo) false, predicate(hi) true.
  while (hi - 1 > lo) {
    const int64_t mid = lo + static_cast<int64_t>(
        (static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo)) / 2);
    if (static_cast<double>(mid) > bound) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

// ------------------------------------------------- hash-table tag groups

/// One-byte tags for SIMD group probing of the flat open-addressing hash
/// tables: each slot carries 7 bits of its key's hash (distinct from the
/// empty marker), and a probe compares 16 tags per step with one SSE2
/// compare+movemask instead of walking slots one at a time. Probes
/// examine candidate slots in exactly the scalar linear-probe order, so
/// table layout and lookup results are bit-identical across tiers.
inline constexpr uint8_t kTagEmpty = 0xff;
inline constexpr size_t kTagGroupWidth = 16;

/// 7-bit tag of a hash (top bits — the slot index uses the low bits).
inline uint8_t TagOfHash(uint64_t h) {
  return static_cast<uint8_t>(h >> 57);
}

/// Bit i set iff tags[i] == tag, for i in [0, 16). `tags` need not be
/// aligned but must have 16 readable bytes.
inline uint32_t TagMatch16(const uint8_t* tags, uint8_t tag) {
#ifdef GRAPHGEN_SIMD_X86_64
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  const __m128i needle = _mm_set1_epi8(static_cast<char>(tag));
  return static_cast<uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(group, needle)));
#else
  uint32_t bits = 0;
  for (size_t i = 0; i < kTagGroupWidth; ++i) {
    bits |= static_cast<uint32_t>(tags[i] == tag) << i;
  }
  return bits;
#endif
}

/// Bit i set iff tags[i] == kTagEmpty.
inline uint32_t TagEmpty16(const uint8_t* tags) {
  return TagMatch16(tags, kTagEmpty);
}

}  // namespace graphgen::simd

#endif  // GRAPHGEN_COMMON_SIMD_H_
