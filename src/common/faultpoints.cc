#include "common/faultpoints.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <new>
#include <thread>

#include "common/sync.h"

namespace graphgen::fault {

namespace {

/// SplitMix64: cheap, decent, and seedable — each thread derives its own
/// stream from the registry seed so a fixed seed reproduces the same fault
/// schedule for a fixed thread interleaving.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::atomic<uint64_t> g_seed{0x6772617068ULL};  // "graph"

bool RollProbability(uint32_t prob_ppm) {
  thread_local uint64_t state = 0;
  if (state == 0) {
    state = g_seed.load(std::memory_order_relaxed) ^
            (std::hash<std::thread::id>{}(std::this_thread::get_id()) |
             1ULL);
  }
  return (SplitMix64(state) % 1000000ULL) < prob_ppm;
}

}  // namespace

struct FaultRegistry::Impl {
  mutable Mutex mu;
  CondVar stall_cv;
  /// Points are appended, never removed; the deque keeps their addresses
  /// stable for the macro's cached reference. Registration and spec
  /// application happen under mu; the points' own fields are atomics so
  /// hot-loop evaluation never takes it.
  std::deque<FaultPoint> points GUARDED_BY(mu);
  std::map<std::string, FaultPoint*> by_name GUARDED_BY(mu);  // sorted
  std::map<std::string, FaultSpec> pending GUARDED_BY(mu);
};

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* instance = new FaultRegistry();
  return *instance;
}

FaultRegistry::FaultRegistry() : impl_(new Impl()) {
  if (const char* seed_env = std::getenv("GRAPHGEN_FAULT_SEED")) {
    g_seed.store(std::strtoull(seed_env, nullptr, 10) | 1ULL,
                 std::memory_order_relaxed);
  }
  if (const char* faults = std::getenv("GRAPHGEN_FAULTS")) {
    // No other thread can reach impl_ during construction, but taking the
    // lock keeps the guarded-field contract analyzable (and is free here).
    MutexLock lock(impl_->mu);
    std::string_view rest = faults;
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view item = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      size_t eq = item.find('=');
      if (eq == std::string_view::npos || eq == 0) continue;
      FaultSpec spec;
      if (ParseSpec(item.substr(eq + 1), &spec).ok()) {
        impl_->pending.emplace(std::string(item.substr(0, eq)), spec);
      }
    }
  }
}

namespace {

void ApplySpecLocked(FaultPoint& point, const FaultSpec& spec) {
  point.action.store(static_cast<int>(spec.action),
                     std::memory_order_relaxed);
  point.prob_ppm.store(
      spec.probability > 0
          ? static_cast<uint32_t>(std::min(spec.probability, 1.0) * 1e6)
          : 0,
      std::memory_order_relaxed);
  point.countdown.store(
      spec.fire_on_hit > 0 ? static_cast<int64_t>(spec.fire_on_hit) : -1,
      std::memory_order_relaxed);
  // Armed last: a hot loop that sees armed also sees the trigger fields.
  point.armed.store(true, std::memory_order_release);
}

}  // namespace

FaultPoint& FaultRegistry::GetPoint(std::string_view name) {
  MutexLock lock(impl_->mu);
  auto it = impl_->by_name.find(std::string(name));
  if (it != impl_->by_name.end()) return *it->second;
  impl_->points.emplace_back(std::string(name));
  FaultPoint& point = impl_->points.back();
  impl_->by_name.emplace(point.name, &point);
  auto pending = impl_->pending.find(point.name);
  if (pending != impl_->pending.end()) {
    ApplySpecLocked(point, pending->second);
    impl_->pending.erase(pending);
  }
  return point;
}

void FaultRegistry::Arm(std::string_view name, const FaultSpec& spec) {
  MutexLock lock(impl_->mu);
  auto it = impl_->by_name.find(std::string(name));
  if (it != impl_->by_name.end()) {
    ApplySpecLocked(*it->second, spec);
  } else {
    impl_->pending[std::string(name)] = spec;
  }
}

void FaultRegistry::Disarm(std::string_view name) {
  MutexLock lock(impl_->mu);
  impl_->pending.erase(std::string(name));
  auto it = impl_->by_name.find(std::string(name));
  if (it != impl_->by_name.end()) {
    it->second->armed.store(false, std::memory_order_release);
  }
  impl_->stall_cv.NotifyAll();
}

void FaultRegistry::DisarmAll() {
  MutexLock lock(impl_->mu);
  impl_->pending.clear();
  for (FaultPoint& point : impl_->points) {
    point.armed.store(false, std::memory_order_release);
  }
  impl_->stall_cv.NotifyAll();
}

std::vector<FaultPointInfo> FaultRegistry::List() const {
  MutexLock lock(impl_->mu);
  std::vector<FaultPointInfo> out;
  out.reserve(impl_->by_name.size());
  for (const auto& [name, point] : impl_->by_name) {
    FaultPointInfo info;
    info.name = name;
    info.armed = point->armed.load(std::memory_order_relaxed);
    info.action =
        static_cast<Action>(point->action.load(std::memory_order_relaxed));
    info.probability =
        point->prob_ppm.load(std::memory_order_relaxed) / 1e6;
    info.countdown = point->countdown.load(std::memory_order_relaxed);
    info.hits = point->hits.load(std::memory_order_relaxed);
    info.fires = point->fires.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::string> FaultRegistry::Names() const {
  MutexLock lock(impl_->mu);
  std::vector<std::string> out;
  out.reserve(impl_->by_name.size());
  for (const auto& [name, point] : impl_->by_name) out.push_back(name);
  return out;
}

uint64_t FaultRegistry::hits(std::string_view name) const {
  MutexLock lock(impl_->mu);
  auto it = impl_->by_name.find(std::string(name));
  return it == impl_->by_name.end()
             ? 0
             : it->second->hits.load(std::memory_order_relaxed);
}

uint64_t FaultRegistry::fires(std::string_view name) const {
  MutexLock lock(impl_->mu);
  auto it = impl_->by_name.find(std::string(name));
  return it == impl_->by_name.end()
             ? 0
             : it->second->fires.load(std::memory_order_relaxed);
}

void FaultRegistry::SetSeed(uint64_t seed) {
  g_seed.store(seed | 1ULL, std::memory_order_relaxed);
}

uint64_t FaultRegistry::seed() const {
  return g_seed.load(std::memory_order_relaxed);
}

Status FaultRegistry::ParseSpec(std::string_view spec_text, FaultSpec* out) {
  FaultSpec spec;
  std::string_view trigger = spec_text;
  size_t bang = spec_text.find('!');
  if (bang != std::string_view::npos) {
    trigger = spec_text.substr(0, bang);
    std::string_view action = spec_text.substr(bang + 1);
    if (action == "fail") {
      spec.action = Action::kFail;
    } else if (action == "throw") {
      spec.action = Action::kThrow;
    } else if (action == "stall") {
      spec.action = Action::kStall;
    } else {
      return Status::InvalidArgument("unknown fault action '" +
                                     std::string(action) +
                                     "' (fail|throw|stall)");
    }
  }
  if (trigger.size() < 2 || (trigger[0] != 'p' && trigger[0] != 'n')) {
    return Status::InvalidArgument(
        "fault trigger must be p<float> or n<int>, got '" +
        std::string(trigger) + "'");
  }
  std::string value(trigger.substr(1));
  char* end = nullptr;
  if (trigger[0] == 'p') {
    spec.probability = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || spec.probability <= 0 ||
        spec.probability > 1) {
      return Status::InvalidArgument("fault probability must be in (0,1]");
    }
  } else {
    spec.fire_on_hit = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || spec.fire_on_hit == 0) {
      return Status::InvalidArgument("fault hit count must be >= 1");
    }
  }
  *out = spec;
  return Status::OK();
}

FireResult Fire(FaultPoint& point) {
  point.hits.fetch_add(1, std::memory_order_relaxed);
  bool fire;
  int64_t countdown = point.countdown.load(std::memory_order_relaxed);
  if (countdown >= 0) {
    // Hit-count mode: exactly one evaluation observes 1 -> 0.
    fire = point.countdown.fetch_sub(1, std::memory_order_relaxed) == 1;
  } else {
    fire = RollProbability(point.prob_ppm.load(std::memory_order_relaxed));
  }
  if (!fire) return FireResult::kContinue;
  point.fires.fetch_add(1, std::memory_order_relaxed);
  switch (static_cast<Action>(point.action.load(std::memory_order_relaxed))) {
    case Action::kFail:
      return FireResult::kFail;
    case Action::kThrow:
      throw std::bad_alloc();
    case Action::kStall: {
      // Park until disarmed (tests release deterministically); the safety
      // cap keeps a forgotten stall from wedging a suite forever.
      auto& impl = *FaultRegistry::Instance().impl_;
      const auto cap = std::chrono::steady_clock::now() +
                       std::chrono::seconds(30);
      MutexLock lock(impl.mu);
      while (point.armed.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < cap) {
        impl.stall_cv.WaitUntil(impl.mu, cap);
      }
      return FireResult::kContinue;
    }
  }
  return FireResult::kContinue;
}

}  // namespace graphgen::fault
