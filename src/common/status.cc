#include "common/status.h"

namespace graphgen {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kPlanError:
      return "Plan error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace graphgen
