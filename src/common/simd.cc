#include "common/simd.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(GRAPHGEN_SIMD_X86_64) && !defined(GRAPHGEN_SIMD_NO_AVX2)
#define GRAPHGEN_SIMD_HAS_AVX2 1
#include <immintrin.h>
#endif

namespace graphgen::simd {
namespace {

// ------------------------------------------------------------ dispatch

bool CpuHasAvx2() {
#ifdef GRAPHGEN_SIMD_HAS_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

struct Resolved {
  Tier tier;
  const char* desc;
};

Resolved ResolveFromEnv() {
  const char* env = std::getenv("GRAPHGEN_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0) {
      return {Tier::kScalar, "scalar (GRAPHGEN_SIMD=off)"};
    }
    if (std::strcmp(env, "avx2") == 0) {
      if (CpuHasAvx2()) return {Tier::kAvx2, "avx2 (GRAPHGEN_SIMD=avx2)"};
      return {Tier::kScalar, "scalar (GRAPHGEN_SIMD=avx2 unavailable)"};
    }
    // Unrecognized values fall through to auto detection.
  }
  if (CpuHasAvx2()) return {Tier::kAvx2, "avx2 (runtime cpu dispatch)"};
#ifdef GRAPHGEN_SIMD_HAS_AVX2
  return {Tier::kScalar, "scalar (cpu lacks avx2)"};
#else
  return {Tier::kScalar, "scalar (avx2 compiled out)"};
#endif
}

// -1 = unresolved; otherwise a Tier value. A racing double-resolve is
// benign (same inputs, same answer), so plain atomics suffice — no lock.
std::atomic<int> g_tier{-1};
std::atomic<const char*> g_desc{nullptr};
std::atomic<int> g_pinned{-1};

Resolved Current() {
  const int pinned = g_pinned.load(std::memory_order_acquire);
  if (pinned >= 0) {
    return {static_cast<Tier>(pinned), pinned == static_cast<int>(Tier::kAvx2)
                                           ? "avx2 (pinned for testing)"
                                           : "scalar (pinned for testing)"};
  }
  int tier = g_tier.load(std::memory_order_acquire);
  if (tier < 0) {
    const Resolved r = ResolveFromEnv();
    g_desc.store(r.desc, std::memory_order_release);
    g_tier.store(static_cast<int>(r.tier), std::memory_order_release);
    return r;
  }
  return {static_cast<Tier>(tier), g_desc.load(std::memory_order_acquire)};
}

// ------------------------------------------------ scalar reference loops

// Applies `keep[i] &= verdict(i)` with the NULL-bitmap merge: NULL cells
// take the precompiled null verdict instead of evaluating the lane.
template <typename Verdict>
void AndMaskLoop(Verdict verdict, const uint8_t* nulls, bool null_match,
                 uint8_t* keep, size_t begin, size_t end) {
  if (nulls == nullptr) {
    for (size_t i = begin; i < end; ++i) {
      keep[i] = static_cast<uint8_t>(keep[i] & verdict(i));
    }
    return;
  }
  const uint8_t nm = null_match ? 1 : 0;
  for (size_t i = begin; i < end; ++i) {
    const uint8_t nn = static_cast<uint8_t>(nulls[i] != 0);
    keep[i] = static_cast<uint8_t>(
        keep[i] & ((nn & nm) | (static_cast<uint8_t>(nn ^ 1) & verdict(i))));
  }
}

void AndMaskI64Range(I64MaskOp op, const int64_t* data, int64_t bound,
                     int64_t eq, const uint8_t* nulls, bool null_match,
                     uint8_t* keep, size_t begin, size_t end) {
  switch (op) {
    case I64MaskOp::kLe:
      AndMaskLoop(
          [&](size_t i) { return static_cast<uint8_t>(data[i] <= bound); },
          nulls, null_match, keep, begin, end);
      break;
    case I64MaskOp::kGe:
      AndMaskLoop(
          [&](size_t i) { return static_cast<uint8_t>(data[i] >= bound); },
          nulls, null_match, keep, begin, end);
      break;
    case I64MaskOp::kEq:
      AndMaskLoop([&](size_t i) { return static_cast<uint8_t>(data[i] == eq); },
                  nulls, null_match, keep, begin, end);
      break;
    case I64MaskOp::kNe:
      AndMaskLoop([&](size_t i) { return static_cast<uint8_t>(data[i] != eq); },
                  nulls, null_match, keep, begin, end);
      break;
    case I64MaskOp::kLeOrEq:
      AndMaskLoop(
          [&](size_t i) {
            return static_cast<uint8_t>(data[i] <= bound || data[i] == eq);
          },
          nulls, null_match, keep, begin, end);
      break;
    case I64MaskOp::kGeOrEq:
      AndMaskLoop(
          [&](size_t i) {
            return static_cast<uint8_t>(data[i] >= bound || data[i] == eq);
          },
          nulls, null_match, keep, begin, end);
      break;
  }
}

void AndMaskF64Range(F64MaskOp op, const double* data, double bound,
                     const uint8_t* nulls, bool null_match, uint8_t* keep,
                     size_t begin, size_t end) {
  switch (op) {
    case F64MaskOp::kLt:
      AndMaskLoop(
          [&](size_t i) { return static_cast<uint8_t>(data[i] < bound); },
          nulls, null_match, keep, begin, end);
      break;
    case F64MaskOp::kLe:
      AndMaskLoop(
          [&](size_t i) { return static_cast<uint8_t>(data[i] <= bound); },
          nulls, null_match, keep, begin, end);
      break;
    case F64MaskOp::kGt:
      AndMaskLoop(
          [&](size_t i) { return static_cast<uint8_t>(data[i] > bound); },
          nulls, null_match, keep, begin, end);
      break;
    case F64MaskOp::kGe:
      AndMaskLoop(
          [&](size_t i) { return static_cast<uint8_t>(data[i] >= bound); },
          nulls, null_match, keep, begin, end);
      break;
    case F64MaskOp::kEq:
      AndMaskLoop(
          [&](size_t i) { return static_cast<uint8_t>(data[i] == bound); },
          nulls, null_match, keep, begin, end);
      break;
    case F64MaskOp::kNe:
      AndMaskLoop(
          [&](size_t i) { return static_cast<uint8_t>(!(data[i] == bound)); },
          nulls, null_match, keep, begin, end);
      break;
  }
}

void AndMaskCodesRange(const uint32_t* codes, const uint32_t* table,
                       const uint8_t* nulls, bool null_match, uint8_t* keep,
                       size_t begin, size_t end) {
  AndMaskLoop(
      [&](size_t i) { return static_cast<uint8_t>(table[codes[i]] != 0); },
      nulls, null_match, keep, begin, end);
}

void TranslateCodesRange(const uint32_t* tuples, size_t stride, size_t slot,
                         const uint32_t* codes, const int32_t* trans,
                         const uint8_t* nulls, int32_t* out, size_t begin,
                         size_t end) {
  if (nulls == nullptr) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = trans[codes[tuples[i * stride + slot]]];
    }
    return;
  }
  for (size_t i = begin; i < end; ++i) {
    const uint32_t id = tuples[i * stride + slot];
    out[i] = nulls[id] != 0 ? -1 : trans[codes[id]];
  }
}

#ifdef GRAPHGEN_SIMD_HAS_AVX2

// ------------------------------------------------------- AVX2 kernels
//
// Compiled with per-function target attributes so the rest of the build
// stays baseline-x86-64; only reached after the runtime cpuid check.
// Verdict masks are packed to movemask bits, merged with NULL bits, then
// expanded to 0/1 bytes through small LUTs and ANDed into `keep` as one
// word — the same bytes the scalar loop writes, in the same order.

// 4-bit lane mask -> four 0/1 verdict bytes (little-endian word).
constexpr std::array<uint32_t, 16> MakeLut4() {
  std::array<uint32_t, 16> lut{};
  for (uint32_t m = 0; m < 16; ++m) {
    uint32_t v = 0;
    for (uint32_t j = 0; j < 4; ++j) {
      if ((m >> j) & 1u) v |= 1u << (8 * j);
    }
    lut[m] = v;
  }
  return lut;
}

// 8-bit lane mask -> eight 0/1 verdict bytes.
constexpr std::array<uint64_t, 256> MakeLut8() {
  std::array<uint64_t, 256> lut{};
  for (uint32_t m = 0; m < 256; ++m) {
    uint64_t v = 0;
    for (uint32_t j = 0; j < 8; ++j) {
      if ((m >> j) & 1u) v |= 1ull << (8 * j);
    }
    lut[m] = v;
  }
  return lut;
}

constexpr std::array<uint32_t, 16> kLut4 = MakeLut4();
constexpr std::array<uint64_t, 256> kLut8 = MakeLut8();

// NULL bits for 4 consecutive mask bytes (bit j set iff cell j is NULL).
inline uint32_t NullBits4(const uint8_t* nulls, size_t i) {
  return static_cast<uint32_t>(nulls[i] != 0) |
         (static_cast<uint32_t>(nulls[i + 1] != 0) << 1) |
         (static_cast<uint32_t>(nulls[i + 2] != 0) << 2) |
         (static_cast<uint32_t>(nulls[i + 3] != 0) << 3);
}

// NULL bits for 8 consecutive mask bytes via one SSE2 compare.
inline uint32_t NullBits8(const uint8_t* nulls, size_t i) {
  const __m128i v =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(nulls + i));
  const uint32_t zero_bits = static_cast<uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())));
  return ~zero_bits & 0xffu;
}

inline void AndWord32(uint8_t* keep, size_t i, uint32_t verdicts) {
  uint32_t w;
  std::memcpy(&w, keep + i, sizeof(w));
  w &= verdicts;
  std::memcpy(keep + i, &w, sizeof(w));
}

inline void AndWord64(uint8_t* keep, size_t i, uint64_t verdicts) {
  uint64_t w;
  std::memcpy(&w, keep + i, sizeof(w));
  w &= verdicts;
  std::memcpy(keep + i, &w, sizeof(w));
}

template <I64MaskOp Op>
__attribute__((target("avx2"))) size_t AndMaskI64Avx2(
    const int64_t* data, int64_t bound, int64_t eq, const uint8_t* nulls,
    bool null_match, uint8_t* keep, size_t n) {
  const __m256i vb = _mm256_set1_epi64x(bound);
  const __m256i ve = _mm256_set1_epi64x(eq);
  const __m256i ones = _mm256_set1_epi64x(-1);
  const uint32_t nm4 = null_match ? 0xfu : 0u;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i m;
    if constexpr (Op == I64MaskOp::kLe) {
      m = _mm256_xor_si256(_mm256_cmpgt_epi64(x, vb), ones);
    } else if constexpr (Op == I64MaskOp::kGe) {
      m = _mm256_xor_si256(_mm256_cmpgt_epi64(vb, x), ones);
    } else if constexpr (Op == I64MaskOp::kEq) {
      m = _mm256_cmpeq_epi64(x, ve);
    } else if constexpr (Op == I64MaskOp::kNe) {
      m = _mm256_xor_si256(_mm256_cmpeq_epi64(x, ve), ones);
    } else if constexpr (Op == I64MaskOp::kLeOrEq) {
      m = _mm256_or_si256(_mm256_xor_si256(_mm256_cmpgt_epi64(x, vb), ones),
                          _mm256_cmpeq_epi64(x, ve));
    } else {  // kGeOrEq
      m = _mm256_or_si256(_mm256_xor_si256(_mm256_cmpgt_epi64(vb, x), ones),
                          _mm256_cmpeq_epi64(x, ve));
    }
    uint32_t bits =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(m)));
    if (nulls != nullptr) {
      const uint32_t nb = NullBits4(nulls, i);
      bits = (nb & nm4) | (~nb & bits & 0xfu);
    }
    AndWord32(keep, i, kLut4[bits]);
  }
  return i;
}

template <int Imm>
__attribute__((target("avx2"))) size_t AndMaskF64Avx2(
    const double* data, double bound, const uint8_t* nulls, bool null_match,
    uint8_t* keep, size_t n) {
  const __m256d vb = _mm256_set1_pd(bound);
  const uint32_t nm4 = null_match ? 0xfu : 0u;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(data + i);
    const __m256d m = _mm256_cmp_pd(x, vb, Imm);
    uint32_t bits = static_cast<uint32_t>(_mm256_movemask_pd(m));
    if (nulls != nullptr) {
      const uint32_t nb = NullBits4(nulls, i);
      bits = (nb & nm4) | (~nb & bits & 0xfu);
    }
    AndWord32(keep, i, kLut4[bits]);
  }
  return i;
}

__attribute__((target("avx2"))) size_t AndMaskCodesAvx2(
    const uint32_t* codes, const uint32_t* table, const uint8_t* nulls,
    bool null_match, uint8_t* keep, size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const uint32_t nm8 = null_match ? 0xffu : 0u;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m256i v = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), c, sizeof(uint32_t));
    const uint32_t zero_bits = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero))));
    uint32_t bits = ~zero_bits & 0xffu;
    if (nulls != nullptr) {
      const uint32_t nb = NullBits8(nulls, i);
      bits = (nb & nm8) | (~nb & bits & 0xffu);
    }
    AndWord64(keep, i, kLut8[bits]);
  }
  return i;
}

__attribute__((target("avx2"))) size_t TranslateCodesAvx2(
    const uint32_t* tuples, size_t stride, size_t slot, const uint32_t* codes,
    const int32_t* trans, int32_t* out, size_t n) {
  const __m256i lane_off = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(static_cast<int32_t>(stride)));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i base =
        _mm256_set1_epi32(static_cast<int32_t>(i * stride + slot));
    const __m256i idx = _mm256_add_epi32(base, lane_off);
    const __m256i ids = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(tuples), idx, sizeof(uint32_t));
    const __m256i cs = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(codes), ids, sizeof(uint32_t));
    const __m256i o = _mm256_i32gather_epi32(trans, cs, sizeof(int32_t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), o);
  }
  return i;
}

#endif  // GRAPHGEN_SIMD_HAS_AVX2

}  // namespace

Tier ActiveTier() { return Current().tier; }

const char* TierName() {
  return Current().tier == Tier::kAvx2 ? "avx2" : "scalar";
}

const char* TierDescription() { return Current().desc; }

bool Avx2Available() { return CpuHasAvx2(); }

void SetTierForTesting(Tier tier) {
  if (tier == Tier::kAvx2 && !CpuHasAvx2()) tier = Tier::kScalar;
  g_pinned.store(static_cast<int>(tier), std::memory_order_release);
}

void ResetTierForTesting() {
  g_pinned.store(-1, std::memory_order_release);
  g_tier.store(-1, std::memory_order_release);
}

void AndMaskI64(Tier tier, I64MaskOp op, const int64_t* data, int64_t bound,
                int64_t eq, const uint8_t* nulls, bool null_match,
                uint8_t* keep, size_t n) {
  size_t done = 0;
#ifdef GRAPHGEN_SIMD_HAS_AVX2
  if (tier == Tier::kAvx2) {
    switch (op) {
      case I64MaskOp::kLe:
        done = AndMaskI64Avx2<I64MaskOp::kLe>(data, bound, eq, nulls,
                                              null_match, keep, n);
        break;
      case I64MaskOp::kGe:
        done = AndMaskI64Avx2<I64MaskOp::kGe>(data, bound, eq, nulls,
                                              null_match, keep, n);
        break;
      case I64MaskOp::kEq:
        done = AndMaskI64Avx2<I64MaskOp::kEq>(data, bound, eq, nulls,
                                              null_match, keep, n);
        break;
      case I64MaskOp::kNe:
        done = AndMaskI64Avx2<I64MaskOp::kNe>(data, bound, eq, nulls,
                                              null_match, keep, n);
        break;
      case I64MaskOp::kLeOrEq:
        done = AndMaskI64Avx2<I64MaskOp::kLeOrEq>(data, bound, eq, nulls,
                                                  null_match, keep, n);
        break;
      case I64MaskOp::kGeOrEq:
        done = AndMaskI64Avx2<I64MaskOp::kGeOrEq>(data, bound, eq, nulls,
                                                  null_match, keep, n);
        break;
    }
  }
#else
  (void)tier;
#endif
  AndMaskI64Range(op, data, bound, eq, nulls, null_match, keep, done, n);
}

void AndMaskF64(Tier tier, F64MaskOp op, const double* data, double bound,
                const uint8_t* nulls, bool null_match, uint8_t* keep,
                size_t n) {
  size_t done = 0;
#ifdef GRAPHGEN_SIMD_HAS_AVX2
  if (tier == Tier::kAvx2) {
    // Immediates mirror the scalar comparisons exactly, including NaN
    // behavior: ordered compares are false on NaN, kNe (`!(x == c)`) is
    // true on NaN, hence the unordered _CMP_NEQ_UQ.
    switch (op) {
      case F64MaskOp::kLt:
        done = AndMaskF64Avx2<_CMP_LT_OQ>(data, bound, nulls, null_match, keep,
                                          n);
        break;
      case F64MaskOp::kLe:
        done = AndMaskF64Avx2<_CMP_LE_OQ>(data, bound, nulls, null_match, keep,
                                          n);
        break;
      case F64MaskOp::kGt:
        done = AndMaskF64Avx2<_CMP_GT_OQ>(data, bound, nulls, null_match, keep,
                                          n);
        break;
      case F64MaskOp::kGe:
        done = AndMaskF64Avx2<_CMP_GE_OQ>(data, bound, nulls, null_match, keep,
                                          n);
        break;
      case F64MaskOp::kEq:
        done = AndMaskF64Avx2<_CMP_EQ_OQ>(data, bound, nulls, null_match, keep,
                                          n);
        break;
      case F64MaskOp::kNe:
        done = AndMaskF64Avx2<_CMP_NEQ_UQ>(data, bound, nulls, null_match,
                                           keep, n);
        break;
    }
  }
#else
  (void)tier;
#endif
  AndMaskF64Range(op, data, bound, nulls, null_match, keep, done, n);
}

void AndMaskCodes(Tier tier, const uint32_t* codes, const uint32_t* table,
                  const uint8_t* nulls, bool null_match, uint8_t* keep,
                  size_t n) {
  size_t done = 0;
#ifdef GRAPHGEN_SIMD_HAS_AVX2
  if (tier == Tier::kAvx2) {
    done = AndMaskCodesAvx2(codes, table, nulls, null_match, keep, n);
  }
#else
  (void)tier;
#endif
  AndMaskCodesRange(codes, table, nulls, null_match, keep, done, n);
}

bool TranslateCodes(Tier tier, const uint32_t* tuples, size_t stride,
                    size_t slot, const uint32_t* codes, const int32_t* trans,
                    const uint8_t* nulls, size_t max_row, int32_t* out,
                    size_t n) {
  size_t done = 0;
  bool vector_path = false;
#ifdef GRAPHGEN_SIMD_HAS_AVX2
  // The gathers index with signed 32-bit lanes: every tuple index and
  // every row id must fit. NULL masks are handled scalar — NULL rows
  // translate to -1, and the gather chain cannot see the mask.
  constexpr size_t kMaxIndex = static_cast<size_t>(INT32_MAX);
  if (tier == Tier::kAvx2 && nulls == nullptr && max_row <= kMaxIndex &&
      (n == 0 || (n - 1) * stride + slot <= kMaxIndex)) {
    done = TranslateCodesAvx2(tuples, stride, slot, codes, trans, out, n);
    vector_path = true;
  }
#else
  (void)tier;
  (void)max_row;
#endif
  TranslateCodesRange(tuples, stride, slot, codes, trans, nulls, out, done, n);
  return vector_path;
}

}  // namespace graphgen::simd
