#include "planner/extractor.h"

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/parallel.h"
#include "common/timer.h"
#include "datalog/parser.h"
#include "datalog/validator.h"
#include "planner/join_analysis.h"
#include "planner/preprocess.h"
#include "planner/segmenter.h"
#include "query/executor.h"

namespace graphgen::planner {

namespace {

// Key for virtual nodes: (edges-rule index, boundary index, join value).
struct VirtualKey {
  size_t rule = 0;
  size_t boundary = 0;
  rel::Value value;

  bool operator==(const VirtualKey& o) const {
    return rule == o.rule && boundary == o.boundary && value == o.value;
  }
};

struct VirtualKeyHash {
  size_t operator()(const VirtualKey& k) const {
    size_t h = k.value.Hash();
    h ^= k.rule * 0x9e3779b97f4a7c15ull + k.boundary * 0xc2b2ae3d27d4eb4full;
    return h;
  }
};

// Output of one executed extraction query, under either engine.
struct ExecOutput {
  Status status = Status::OK();
  std::optional<query::RowIdResult> columnar;
  std::optional<query::ResultSet> rows;

  query::RowsView View() const {
    return columnar.has_value() ? query::RowsView(&*columnar)
                                : query::RowsView(&*rows);
  }
  size_t NumRows() const {
    if (columnar.has_value()) return columnar->NumRows();
    return rows.has_value() ? rows->NumRows() : 0;
  }
};

// Executes every plan, independent queries concurrently: on the shared
// pool when one is provided (deadlock-free — RunBatch lets the caller
// participate), else on scoped threads; inline when serial. Results land
// at the plan's index, so callers consume them in deterministic order.
// The thread budget is split between rule fan-out and intra-query
// parallelism rather than multiplied (N concurrent rules each get
// ~budget/N operator threads; a lone rule gets the whole budget). The
// split never changes results — output is identical for every count.
std::vector<ExecOutput> RunPlans(
    const rel::Database& db, const std::vector<const query::PlanNode*>& plans,
    const ExtractOptions& options) {
  const size_t n = plans.size();
  const size_t budget =
      options.threads == 0 ? DefaultThreadCount() : options.threads;
  const size_t fan_out =
      (n <= 1 || options.threads == 1) ? 1 : std::min(n, budget);
  const query::Executor executor(
      &db, {.threads = std::max<size_t>(1, budget / fan_out),
            .engine = options.engine});
  std::vector<ExecOutput> outs(plans.size());
  auto run_one = [&executor, &plans, &outs, &options](size_t i) {
    if (options.engine == query::ExecEngine::kColumnar) {
      auto result = executor.ExecuteColumnar(*plans[i]);
      outs[i].status = result.status();
      if (result.ok()) outs[i].columnar = std::move(result).ValueOrDie();
    } else {
      auto result = executor.ExecuteRowAtATime(*plans[i]);
      outs[i].status = result.status();
      if (result.ok()) outs[i].rows = std::move(result).ValueOrDie();
    }
  };
  if (fan_out <= 1) {
    for (size_t i = 0; i < n; ++i) run_one(i);
    return outs;
  }
  // Bound concurrency to fan_out even on a pool larger than the thread
  // budget: submit fan_out drainers over a shared index, not one task
  // per plan.
  std::atomic<size_t> next{0};
  auto drain = [&run_one, &next, n] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= n) return;
      run_one(i);
    }
  };
  if (options.pool != nullptr) {
    std::vector<std::function<void()>> tasks(fan_out, drain);
    options.pool->RunBatch(std::move(tasks));
    return outs;
  }
  ParallelInvoke(fan_out, [&drain](size_t) { drain(); });
  return outs;
}

// Executes the Nodes rules: creates real nodes, assigns properties, and
// fills the external-key -> NodeId map. Queries run concurrently (phase
// 2); node-id assignment applies their results serially in rule order
// (phase 3), so ids are deterministic.
Status ExecuteNodesRules(const rel::Database& db, const dsl::Program& program,
                         const ExtractOptions& options,
                         ExtractionResult& result,
                         std::unordered_map<rel::Value, NodeId, rel::ValueHash>&
                             node_ids) {
  CondensedStorage& storage = result.storage;

  // Phase 1: translate each rule into a DISTINCT projection plan.
  std::vector<std::unique_ptr<query::PlanNode>> plans;
  for (const dsl::Rule& rule : program.nodes_rules) {
    if (rule.body.size() != 1) {
      return Status::Unsupported(
          "Nodes rules with multiple body atoms are not supported; define a "
          "view table or use a single atom");
    }
    const dsl::Atom& atom = rule.body[0];

    // Map head args to body columns.
    std::vector<size_t> columns;
    for (const std::string& head_var : rule.head_args) {
      std::optional<size_t> col;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (atom.args[i].kind == dsl::Term::Kind::kVariable &&
            atom.args[i].variable == head_var) {
          col = i;
          break;
        }
      }
      if (!col.has_value()) {
        return Status::PlanError("head variable " + head_var +
                                 " not found in Nodes body");
      }
      columns.push_back(*col);
    }

    // Predicates: constants in args + comparisons.
    std::vector<query::Predicate> predicates;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      if (atom.args[c].kind == dsl::Term::Kind::kConstant) {
        predicates.push_back(
            {c, query::CompareOp::kEq, atom.args[c].constant});
      }
    }
    for (const dsl::Comparison& cmp : rule.comparisons) {
      if (cmp.rhs_is_var) {
        return Status::Unsupported(
            "variable-variable comparisons are not supported in Nodes rules");
      }
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (atom.args[i].kind == dsl::Term::Kind::kVariable &&
            atom.args[i].variable == cmp.lhs_var) {
          query::CompareOp op = query::CompareOp::kEq;
          switch (cmp.op) {
            case dsl::PredOp::kEq: op = query::CompareOp::kEq; break;
            case dsl::PredOp::kNe: op = query::CompareOp::kNe; break;
            case dsl::PredOp::kLt: op = query::CompareOp::kLt; break;
            case dsl::PredOp::kLe: op = query::CompareOp::kLe; break;
            case dsl::PredOp::kGt: op = query::CompareOp::kGt; break;
            case dsl::PredOp::kGe: op = query::CompareOp::kGe; break;
          }
          predicates.push_back({i, op, cmp.rhs_const});
          break;
        }
      }
    }

    auto plan = std::make_unique<query::ProjectNode>(
        std::make_unique<query::ScanNode>(atom.relation, predicates), columns,
        rule.head_args, /*distinct=*/true);
    result.sql.push_back(plan->ToSql());
    plans.push_back(std::move(plan));
  }

  // Phase 2: run the node queries concurrently.
  std::vector<const query::PlanNode*> refs;
  refs.reserve(plans.size());
  for (const auto& p : plans) refs.push_back(p.get());
  std::vector<ExecOutput> outs = RunPlans(db, refs, options);

  // Phase 3: apply serially in rule order.
  for (size_t r = 0; r < program.nodes_rules.size(); ++r) {
    const dsl::Rule& rule = program.nodes_rules[r];
    GRAPHGEN_RETURN_NOT_OK(outs[r].status);
    result.rows_scanned += outs[r].NumRows();

    // Property columns registered once.
    std::vector<size_t> prop_cols;
    for (size_t i = 1; i < rule.head_args.size(); ++i) {
      prop_cols.push_back(storage.properties().AddColumn(rule.head_args[i]));
    }

    const query::RowsView rows = outs[r].View();
    for (size_t ri = 0; ri < rows.NumRows(); ++ri) {
      rel::Value key = rows.ValueAt(ri, 0);
      if (key.is_null()) continue;
      auto [it, inserted] = node_ids.emplace(std::move(key), 0);
      if (inserted) {
        it->second = storage.AddRealNode();
        // ToStringAt renders dictionary-encoded keys straight from the
        // dictionary entry (identical text to Value::ToString).
        storage.properties().SetExternalKey(it->second,
                                            rows.ToStringAt(ri, 0));
      }
      for (size_t i = 1; i < rule.head_args.size(); ++i) {
        storage.properties().Set(
            it->second, prop_cols[i - 1],
            rows.IsNullAt(ri, i) ? "" : rows.ToStringAt(ri, i));
      }
    }
  }
  result.real_nodes = storage.NumRealNodes();
  return Status::OK();
}

bool CompareCount(int64_t count, dsl::PredOp op, int64_t threshold) {
  switch (op) {
    case dsl::PredOp::kEq: return count == threshold;
    case dsl::PredOp::kNe: return count != threshold;
    case dsl::PredOp::kLt: return count < threshold;
    case dsl::PredOp::kLe: return count <= threshold;
    case dsl::PredOp::kGt: return count > threshold;
    case dsl::PredOp::kGe: return count >= threshold;
  }
  return false;
}

struct CountPlanParts {
  std::unique_ptr<query::PlanNode> plan;
  std::string sql;
};

// Case 2 of §3.3: a COUNT aggregate forces the full join. Builds the
// whole-chain plan projecting DISTINCT (src, dst, aggvar) so each
// binding counts once per pair. `node_keys` (optional) pushes the Nodes
// filter into the endpoint scans — safe here because ApplyCountConstraint
// skips rows with a dangling src or dst before counting.
Result<CountPlanParts> BuildCountConstraintPlan(
    const JoinChain& chain, const dsl::AggregateConstraint& agg,
    const std::shared_ptr<const query::KeyFilter>& node_keys) {
  // Column offsets of each atom in the concatenated join output.
  std::vector<size_t> offsets(chain.atoms.size(), 0);
  for (size_t i = 1; i < chain.atoms.size(); ++i) {
    offsets[i] = offsets[i - 1] + chain.atoms[i - 1].atom->args.size();
  }
  // Locate the aggregate variable.
  size_t agg_col = 0;
  bool found = false;
  for (size_t i = 0; i < chain.atoms.size() && !found; ++i) {
    const dsl::Atom& atom = *chain.atoms[i].atom;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      if (atom.args[c].kind == dsl::Term::Kind::kVariable &&
          atom.args[c].variable == agg.variable) {
        agg_col = offsets[i] + c;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return Status::PlanError("COUNT variable not found in join chain");
  }

  // Full left-deep join over the entire chain.
  const size_t last = chain.atoms.size() - 1;
  auto first_scan = std::make_unique<query::ScanNode>(
      chain.atoms[0].atom->relation, chain.atoms[0].predicates);
  if (node_keys != nullptr) {
    first_scan->AddSemiJoin(chain.atoms[0].in_col, node_keys);
    if (last == 0) first_scan->AddSemiJoin(chain.atoms[0].out_col, node_keys);
  }
  std::unique_ptr<query::PlanNode> plan = std::move(first_scan);
  for (size_t k = 1; k < chain.atoms.size(); ++k) {
    auto right = std::make_unique<query::ScanNode>(
        chain.atoms[k].atom->relation, chain.atoms[k].predicates);
    if (node_keys != nullptr && k == last) {
      right->AddSemiJoin(chain.atoms[k].out_col, node_keys);
    }
    size_t left_col = offsets[k - 1] + chain.atoms[k - 1].out_col;
    plan = std::make_unique<query::HashJoinNode>(
        std::move(plan), std::move(right), left_col, chain.atoms[k].in_col);
  }
  size_t src_col = chain.atoms.front().in_col;
  size_t dst_col = offsets.back() + chain.atoms.back().out_col;
  auto project = std::make_unique<query::ProjectNode>(
      std::move(plan), std::vector<size_t>{src_col, dst_col, agg_col},
      std::vector<std::string>{"src", "dst", agg.variable},
      /*distinct=*/true);
  CountPlanParts parts;
  parts.sql = project->ToSql() + "  -- GROUP BY src, dst HAVING COUNT(" +
              agg.variable + ") " + std::string(dsl::PredOpToString(agg.op)) +
              " " + std::to_string(agg.threshold);
  parts.plan = std::move(project);
  return parts;
}

// GROUP BY (src, dst) HAVING COUNT(aggvar) <op> threshold over the
// distinct (src, dst, aggvar) bindings; adds a direct edge per passing
// pair ("co-authored multiple papers together", §1).
Status ApplyCountConstraint(
    const query::RowsView& rows, const dsl::AggregateConstraint& agg,
    const std::unordered_map<rel::Value, NodeId, rel::ValueHash>& node_ids,
    ExtractionResult& result) {
  struct PairHash {
    size_t operator()(const std::pair<NodeId, NodeId>& p) const {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(p.first) << 32) |
                                   p.second);
    }
  };
  std::unordered_map<std::pair<NodeId, NodeId>, int64_t, PairHash> counts;
  for (size_t ri = 0; ri < rows.NumRows(); ++ri) {
    const rel::Value& sv = rows.ValueAt(ri, 0);
    const rel::Value& dv = rows.ValueAt(ri, 1);
    if (sv.is_null() || dv.is_null()) continue;
    auto src = node_ids.find(sv);
    auto dst = node_ids.find(dv);
    if (src == node_ids.end() || dst == node_ids.end()) continue;
    if (src->second == dst->second) continue;  // self pairs never edges
    ++counts[{src->second, dst->second}];
  }
  for (const auto& [pair, count] : counts) {
    if (CompareCount(count, agg.op, agg.threshold)) {
      result.storage.AddEdge(NodeRef::Real(pair.first),
                             NodeRef::Real(pair.second));
    }
  }
  return Status::OK();
}

// Planned work for one Edges rule: either a segment list or a
// count-constraint plan, plus the index of its first query unit.
struct EdgeRuleWork {
  std::vector<Segment> segments;
  std::unique_ptr<query::PlanNode> count_plan;
  size_t first_unit = 0;
};

}  // namespace

Result<ExtractionResult> Extract(const rel::Database& db,
                                 const dsl::Program& program,
                                 const ExtractOptions& options) {
  ExtractionResult result;
  std::unordered_map<rel::Value, NodeId, rel::ValueHash> node_ids;

  WallTimer timer;
  GRAPHGEN_RETURN_NOT_OK(
      ExecuteNodesRules(db, program, options, result, node_ids));
  result.nodes_seconds = timer.Seconds();

  timer.Restart();

  // Optional semi-join pushdown: bucket the node keys once; edge-rule
  // endpoint scans then drop dangling rows inside the query.
  std::shared_ptr<const query::KeyFilter> node_keys;
  if (options.semi_join_pushdown) {
    auto filter = std::make_shared<query::KeyFilter>();
    for (const auto& [key, id] : node_ids) {
      (void)id;
      switch (key.type()) {
        case rel::ValueType::kInt64:
          filter->ints.insert(key.AsInt64());
          break;
        case rel::ValueType::kString:
          filter->strings.insert(key.AsString());
          break;
        default:
          filter->others.insert(key);
          break;
      }
    }
    node_keys = std::move(filter);
  }

  // Phase 1: analyze every Edges rule and collect all query units.
  std::vector<EdgeRuleWork> works;
  std::vector<const query::PlanNode*> units;
  for (size_t rule_idx = 0; rule_idx < program.edges_rules.size();
       ++rule_idx) {
    const dsl::Rule& rule = program.edges_rules[rule_idx];
    GRAPHGEN_ASSIGN_OR_RETURN(
        JoinChain chain,
        AnalyzeEdgesRule(rule, db, options.large_output_factor));

    EdgeRuleWork work;
    work.first_unit = units.size();
    if (rule.count_constraint.has_value()) {
      GRAPHGEN_ASSIGN_OR_RETURN(
          CountPlanParts parts,
          BuildCountConstraintPlan(chain, *rule.count_constraint, node_keys));
      result.sql.push_back(parts.sql);
      work.count_plan = std::move(parts.plan);
      units.push_back(work.count_plan.get());
    } else {
      // dst-side pushdown is only sound on a single-segment chain: with
      // multiple segments the assembly loop allocates the src boundary's
      // virtual node before checking dst, so early dst filtering would
      // renumber virtual nodes.
      const bool single_segment = !chain.HasLargeOutputJoin();
      GRAPHGEN_ASSIGN_OR_RETURN(
          work.segments,
          BuildSegments(chain, node_keys,
                        single_segment ? node_keys : nullptr));
      for (const Segment& seg : work.segments) {
        result.sql.push_back(seg.sql);
        units.push_back(seg.plan.get());
      }
    }
    works.push_back(std::move(work));
  }

  // Phase 2: execute all segment/count queries, rules concurrently.
  std::vector<ExecOutput> outs = RunPlans(db, units, options);

  // Phase 3: assemble the condensed graph serially in (rule, segment,
  // row) order — virtual-node numbering and edge order are identical to
  // a fully serial run.
  std::unordered_map<VirtualKey, uint32_t, VirtualKeyHash> virtual_ids;
  for (size_t rule_idx = 0; rule_idx < works.size(); ++rule_idx) {
    EdgeRuleWork& work = works[rule_idx];
    if (work.count_plan != nullptr) {
      ExecOutput& out = outs[work.first_unit];
      GRAPHGEN_RETURN_NOT_OK(out.status);
      result.rows_scanned += out.NumRows();
      GRAPHGEN_RETURN_NOT_OK(ApplyCountConstraint(
          out.View(), *program.edges_rules[rule_idx].count_constraint,
          node_ids, result));
      continue;
    }

    for (size_t si = 0; si < work.segments.size(); ++si) {
      const Segment& seg = work.segments[si];
      ExecOutput& out = outs[work.first_unit + si];
      GRAPHGEN_RETURN_NOT_OK(out.status);
      result.rows_scanned += out.NumRows();

      const bool first = si == 0;
      const bool last = si + 1 == work.segments.size();

      auto virtual_for = [&](size_t boundary,
                             const rel::Value& value) -> NodeRef {
        VirtualKey key{rule_idx, boundary, value};
        auto [it, inserted] = virtual_ids.emplace(key, 0);
        if (inserted) it->second = result.storage.AddVirtualNode();
        return NodeRef::Virtual(it->second);
      };

      const query::RowsView rows = out.View();
      for (size_t ri = 0; ri < rows.NumRows(); ++ri) {
        const rel::Value src = rows.ValueAt(ri, 0);
        const rel::Value dst = rows.ValueAt(ri, 1);
        if (src.is_null() || dst.is_null()) continue;

        NodeRef from;
        NodeRef to;
        if (first) {
          auto it = node_ids.find(src);
          if (it == node_ids.end()) continue;  // dangling key: no node
          from = NodeRef::Real(it->second);
        } else {
          from = virtual_for(work.segments[si - 1].last_atom, src);
        }
        if (last) {
          auto it = node_ids.find(dst);
          if (it == node_ids.end()) continue;
          to = NodeRef::Real(it->second);
        } else {
          to = virtual_for(seg.last_atom, dst);
        }
        result.storage.AddEdge(from, to);
      }
    }
  }
  result.edges_seconds = timer.Seconds();

  if (options.preprocess) {
    timer.Restart();
    PreprocessResult pp =
        ExpandSmallVirtualNodes(result.storage, options.threads);
    (void)pp;
    result.preprocess_seconds = timer.Seconds();
  }

  result.condensed_edges = result.storage.CountCondensedEdges();
  result.virtual_nodes = result.storage.NumVirtualNodes();
  return result;
}

Result<ExtractionResult> ExtractFromQuery(const rel::Database& db,
                                          std::string_view datalog,
                                          const ExtractOptions& options) {
  GRAPHGEN_ASSIGN_OR_RETURN(dsl::Program program, dsl::Parse(datalog));
  GRAPHGEN_RETURN_NOT_OK(dsl::Validate(program, db));
  return Extract(db, program, options);
}

std::string DiffExtraction(const ExtractionResult& a,
                           const ExtractionResult& b,
                           bool compare_scan_counts) {
  auto num = [](uint64_t v) { return std::to_string(v); };
  if (a.real_nodes != b.real_nodes) {
    return "real_nodes: " + num(a.real_nodes) + " vs " + num(b.real_nodes);
  }
  if (a.virtual_nodes != b.virtual_nodes) {
    return "virtual_nodes: " + num(a.virtual_nodes) + " vs " +
           num(b.virtual_nodes);
  }
  if (a.condensed_edges != b.condensed_edges) {
    return "condensed_edges: " + num(a.condensed_edges) + " vs " +
           num(b.condensed_edges);
  }
  if (compare_scan_counts && a.rows_scanned != b.rows_scanned) {
    return "rows_scanned: " + num(a.rows_scanned) + " vs " +
           num(b.rows_scanned);
  }
  const CondensedStorage& sa = a.storage;
  const CondensedStorage& sb = b.storage;
  if (sa.NumRealNodes() != sb.NumRealNodes() ||
      sa.NumVirtualNodes() != sb.NumVirtualNodes()) {
    return "storage node counts differ";
  }
  for (size_t i = 0; i < sa.NumRealNodes(); ++i) {
    const NodeRef r = NodeRef::Real(static_cast<uint32_t>(i));
    if (sa.OutEdges(r) != sb.OutEdges(r)) {
      return "out-adjacency of real node " + num(i) + " differs";
    }
    if (sa.InEdges(r) != sb.InEdges(r)) {
      return "in-adjacency of real node " + num(i) + " differs";
    }
  }
  for (size_t v = 0; v < sa.NumVirtualNodes(); ++v) {
    const NodeRef r = NodeRef::Virtual(static_cast<uint32_t>(v));
    if (sa.OutEdges(r) != sb.OutEdges(r)) {
      return "out-adjacency of virtual node " + num(v) + " differs";
    }
    if (sa.InEdges(r) != sb.InEdges(r)) {
      return "in-adjacency of virtual node " + num(v) + " differs";
    }
  }
  const PropertyTable& pa = sa.properties();
  const PropertyTable& pb = sb.properties();
  if (pa.ColumnNames() != pb.ColumnNames()) return "property columns differ";
  const std::vector<std::string> cols = pa.ColumnNames();
  for (size_t i = 0; i < sa.NumRealNodes(); ++i) {
    const NodeId u = static_cast<NodeId>(i);
    if (pa.ExternalKey(u) != pb.ExternalKey(u)) {
      return "external key of node " + num(i) + " differs";
    }
    for (const std::string& c : cols) {
      if (pa.GetByName(u, c) != pb.GetByName(u, c)) {
        return "property '" + c + "' of node " + num(i) + " differs";
      }
    }
  }
  return "";
}

}  // namespace graphgen::planner
