#include "planner/extractor.h"

#include <optional>
#include <unordered_map>

#include "common/timer.h"
#include "datalog/parser.h"
#include "datalog/validator.h"
#include "planner/join_analysis.h"
#include "planner/preprocess.h"
#include "planner/segmenter.h"
#include "query/executor.h"

namespace graphgen::planner {

namespace {

// Key for virtual nodes: (edges-rule index, boundary index, join value).
struct VirtualKey {
  size_t rule = 0;
  size_t boundary = 0;
  rel::Value value;

  bool operator==(const VirtualKey& o) const {
    return rule == o.rule && boundary == o.boundary && value == o.value;
  }
};

struct VirtualKeyHash {
  size_t operator()(const VirtualKey& k) const {
    size_t h = k.value.Hash();
    h ^= k.rule * 0x9e3779b97f4a7c15ull + k.boundary * 0xc2b2ae3d27d4eb4full;
    return h;
  }
};

// Executes the Nodes rules: creates real nodes, assigns properties, and
// fills the external-key -> NodeId map.
Status ExecuteNodesRules(const rel::Database& db, const dsl::Program& program,
                         ExtractionResult& result,
                         std::unordered_map<rel::Value, NodeId, rel::ValueHash>&
                             node_ids) {
  query::Executor executor(&db);
  CondensedStorage& storage = result.storage;

  for (const dsl::Rule& rule : program.nodes_rules) {
    if (rule.body.size() != 1) {
      return Status::Unsupported(
          "Nodes rules with multiple body atoms are not supported; define a "
          "view table or use a single atom");
    }
    const dsl::Atom& atom = rule.body[0];

    // Map head args to body columns.
    std::vector<size_t> columns;
    for (const std::string& head_var : rule.head_args) {
      std::optional<size_t> col;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (atom.args[i].kind == dsl::Term::Kind::kVariable &&
            atom.args[i].variable == head_var) {
          col = i;
          break;
        }
      }
      if (!col.has_value()) {
        return Status::PlanError("head variable " + head_var +
                                 " not found in Nodes body");
      }
      columns.push_back(*col);
    }

    // Predicates: constants in args + comparisons.
    std::vector<query::Predicate> predicates;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      if (atom.args[c].kind == dsl::Term::Kind::kConstant) {
        predicates.push_back(
            {c, query::CompareOp::kEq, atom.args[c].constant});
      }
    }
    for (const dsl::Comparison& cmp : rule.comparisons) {
      if (cmp.rhs_is_var) {
        return Status::Unsupported(
            "variable-variable comparisons are not supported in Nodes rules");
      }
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (atom.args[i].kind == dsl::Term::Kind::kVariable &&
            atom.args[i].variable == cmp.lhs_var) {
          query::CompareOp op = query::CompareOp::kEq;
          switch (cmp.op) {
            case dsl::PredOp::kEq: op = query::CompareOp::kEq; break;
            case dsl::PredOp::kNe: op = query::CompareOp::kNe; break;
            case dsl::PredOp::kLt: op = query::CompareOp::kLt; break;
            case dsl::PredOp::kLe: op = query::CompareOp::kLe; break;
            case dsl::PredOp::kGt: op = query::CompareOp::kGt; break;
            case dsl::PredOp::kGe: op = query::CompareOp::kGe; break;
          }
          predicates.push_back({i, op, cmp.rhs_const});
          break;
        }
      }
    }

    query::ProjectNode plan(
        std::make_unique<query::ScanNode>(atom.relation, predicates), columns,
        rule.head_args, /*distinct=*/true);
    result.sql.push_back(plan.ToSql());
    GRAPHGEN_ASSIGN_OR_RETURN(query::ResultSet rows, executor.Execute(plan));
    result.rows_scanned += rows.NumRows();

    // Property columns registered once.
    std::vector<size_t> prop_cols;
    for (size_t i = 1; i < rule.head_args.size(); ++i) {
      prop_cols.push_back(storage.properties().AddColumn(rule.head_args[i]));
    }

    for (const rel::Row& row : rows.rows) {
      const rel::Value& key = row[0];
      if (key.is_null()) continue;
      auto [it, inserted] = node_ids.emplace(key, 0);
      if (inserted) {
        it->second = storage.AddRealNode();
        storage.properties().SetExternalKey(it->second, key.ToString());
      }
      for (size_t i = 1; i < row.size(); ++i) {
        storage.properties().Set(it->second, prop_cols[i - 1],
                                 row[i].is_null() ? "" : row[i].ToString());
      }
    }
  }
  result.real_nodes = storage.NumRealNodes();
  return Status::OK();
}

bool CompareCount(int64_t count, dsl::PredOp op, int64_t threshold) {
  switch (op) {
    case dsl::PredOp::kEq: return count == threshold;
    case dsl::PredOp::kNe: return count != threshold;
    case dsl::PredOp::kLt: return count < threshold;
    case dsl::PredOp::kLe: return count <= threshold;
    case dsl::PredOp::kGt: return count > threshold;
    case dsl::PredOp::kGe: return count >= threshold;
  }
  return false;
}

// Case 2 of §3.3: a COUNT aggregate forces the full join. Executes the
// whole chain, counts distinct bindings of the aggregate variable per
// (ID1, ID2) pair, and adds a direct edge for every pair passing the
// threshold ("co-authored multiple papers together", §1).
Status ExtractWithCountConstraint(
    const rel::Database& db, const JoinChain& chain,
    const dsl::AggregateConstraint& agg,
    const std::unordered_map<rel::Value, NodeId, rel::ValueHash>& node_ids,
    ExtractionResult& result) {
  // Column offsets of each atom in the concatenated join output.
  std::vector<size_t> offsets(chain.atoms.size(), 0);
  for (size_t i = 1; i < chain.atoms.size(); ++i) {
    offsets[i] = offsets[i - 1] + chain.atoms[i - 1].atom->args.size();
  }
  // Locate the aggregate variable.
  size_t agg_col = 0;
  bool found = false;
  for (size_t i = 0; i < chain.atoms.size() && !found; ++i) {
    const dsl::Atom& atom = *chain.atoms[i].atom;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      if (atom.args[c].kind == dsl::Term::Kind::kVariable &&
          atom.args[c].variable == agg.variable) {
        agg_col = offsets[i] + c;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return Status::PlanError("COUNT variable not found in join chain");
  }

  // Full left-deep join over the entire chain.
  std::unique_ptr<query::PlanNode> plan = std::make_unique<query::ScanNode>(
      chain.atoms[0].atom->relation, chain.atoms[0].predicates);
  for (size_t k = 1; k < chain.atoms.size(); ++k) {
    auto right = std::make_unique<query::ScanNode>(
        chain.atoms[k].atom->relation, chain.atoms[k].predicates);
    size_t left_col = offsets[k - 1] + chain.atoms[k - 1].out_col;
    plan = std::make_unique<query::HashJoinNode>(
        std::move(plan), std::move(right), left_col, chain.atoms[k].in_col);
  }
  size_t src_col = chain.atoms.front().in_col;
  size_t dst_col = offsets.back() + chain.atoms.back().out_col;
  // DISTINCT (src, dst, aggvar) so each binding counts once per pair.
  query::ProjectNode project(
      std::move(plan), {src_col, dst_col, agg_col},
      {"src", "dst", agg.variable}, /*distinct=*/true);
  result.sql.push_back(project.ToSql() + "  -- GROUP BY src, dst HAVING COUNT(" +
                       agg.variable + ") " +
                       std::string(dsl::PredOpToString(agg.op)) + " " +
                       std::to_string(agg.threshold));

  query::Executor executor(&db);
  GRAPHGEN_ASSIGN_OR_RETURN(query::ResultSet rows, executor.Execute(project));
  result.rows_scanned += rows.NumRows();

  // GROUP BY (src, dst) HAVING COUNT(aggvar) <op> threshold.
  struct PairHash {
    size_t operator()(const std::pair<NodeId, NodeId>& p) const {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(p.first) << 32) |
                                   p.second);
    }
  };
  std::unordered_map<std::pair<NodeId, NodeId>, int64_t, PairHash> counts;
  for (const rel::Row& row : rows.rows) {
    if (row[0].is_null() || row[1].is_null()) continue;
    auto src = node_ids.find(row[0]);
    auto dst = node_ids.find(row[1]);
    if (src == node_ids.end() || dst == node_ids.end()) continue;
    if (src->second == dst->second) continue;  // self pairs never edges
    ++counts[{src->second, dst->second}];
  }
  for (const auto& [pair, count] : counts) {
    if (CompareCount(count, agg.op, agg.threshold)) {
      result.storage.AddEdge(NodeRef::Real(pair.first),
                             NodeRef::Real(pair.second));
    }
  }
  return Status::OK();
}

}  // namespace

Result<ExtractionResult> Extract(const rel::Database& db,
                                 const dsl::Program& program,
                                 const ExtractOptions& options) {
  ExtractionResult result;
  std::unordered_map<rel::Value, NodeId, rel::ValueHash> node_ids;

  WallTimer timer;
  GRAPHGEN_RETURN_NOT_OK(ExecuteNodesRules(db, program, result, node_ids));
  result.nodes_seconds = timer.Seconds();

  timer.Restart();
  query::Executor executor(&db);
  std::unordered_map<VirtualKey, uint32_t, VirtualKeyHash> virtual_ids;

  for (size_t rule_idx = 0; rule_idx < program.edges_rules.size();
       ++rule_idx) {
    const dsl::Rule& rule = program.edges_rules[rule_idx];
    GRAPHGEN_ASSIGN_OR_RETURN(
        JoinChain chain,
        AnalyzeEdgesRule(rule, db, options.large_output_factor));

    if (rule.count_constraint.has_value()) {
      GRAPHGEN_RETURN_NOT_OK(ExtractWithCountConstraint(
          db, chain, *rule.count_constraint, node_ids, result));
      continue;
    }

    GRAPHGEN_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                              BuildSegments(chain));

    // Maps a segment boundary to the chain boundary index it postpones.
    // Segment i's output feeds the large-output boundary after its last
    // atom (if any).
    for (size_t si = 0; si < segments.size(); ++si) {
      const Segment& seg = segments[si];
      result.sql.push_back(seg.sql);
      GRAPHGEN_ASSIGN_OR_RETURN(query::ResultSet rows,
                                executor.Execute(*seg.plan));
      result.rows_scanned += rows.NumRows();

      const bool first = si == 0;
      const bool last = si + 1 == segments.size();

      auto virtual_for = [&](size_t boundary,
                             const rel::Value& value) -> NodeRef {
        VirtualKey key{rule_idx, boundary, value};
        auto [it, inserted] = virtual_ids.emplace(key, 0);
        if (inserted) it->second = result.storage.AddVirtualNode();
        return NodeRef::Virtual(it->second);
      };

      for (const rel::Row& row : rows.rows) {
        const rel::Value& src = row[0];
        const rel::Value& dst = row[1];
        if (src.is_null() || dst.is_null()) continue;

        NodeRef from;
        NodeRef to;
        if (first) {
          auto it = node_ids.find(src);
          if (it == node_ids.end()) continue;  // dangling key: no node
          from = NodeRef::Real(it->second);
        } else {
          from = virtual_for(segments[si - 1].last_atom, src);
        }
        if (last) {
          auto it = node_ids.find(dst);
          if (it == node_ids.end()) continue;
          to = NodeRef::Real(it->second);
        } else {
          to = virtual_for(seg.last_atom, dst);
        }
        result.storage.AddEdge(from, to);
      }
    }
  }
  result.edges_seconds = timer.Seconds();

  if (options.preprocess) {
    timer.Restart();
    PreprocessResult pp =
        ExpandSmallVirtualNodes(result.storage, options.threads);
    (void)pp;
    result.preprocess_seconds = timer.Seconds();
  }

  result.condensed_edges = result.storage.CountCondensedEdges();
  result.virtual_nodes = result.storage.NumVirtualNodes();
  return result;
}

Result<ExtractionResult> ExtractFromQuery(const rel::Database& db,
                                          std::string_view datalog,
                                          const ExtractOptions& options) {
  GRAPHGEN_ASSIGN_OR_RETURN(dsl::Program program, dsl::Parse(datalog));
  GRAPHGEN_RETURN_NOT_OK(dsl::Validate(program, db));
  return Extract(db, program, options);
}

}  // namespace graphgen::planner
