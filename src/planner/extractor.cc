#include "planner/extractor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "common/cancel.h"
#include "common/faultpoints.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "datalog/parser.h"
#include "datalog/validator.h"
#include "planner/extractor_internal.h"
#include "planner/incremental.h"
#include "planner/join_analysis.h"
#include "planner/preprocess.h"
#include "planner/segmenter.h"
#include "planner/typed_maps.h"
#include "query/executor.h"

namespace graphgen::planner {

// Executes every plan, independent queries concurrently: on the shared
// pool when one is provided (deadlock-free — RunBatch lets the caller
// participate), else on scoped threads; inline when serial. Results land
// at the plan's index, so callers consume them in deterministic order.
// The thread budget is split between rule fan-out and intra-query
// parallelism rather than multiplied (N concurrent rules each get
// ~budget/N operator threads; a lone rule gets the whole budget). The
// split never changes results — output is identical for every count.
std::vector<ExecOutput> RunPlans(
    const rel::Database& db, const std::vector<const query::PlanNode*>& plans,
    const ExtractOptions& options,
    const std::vector<obs::ProfileNode*>* profs) {
  const size_t n = plans.size();
  const size_t budget =
      options.threads == 0 ? DefaultThreadCount() : options.threads;
  const size_t fan_out =
      (n <= 1 || options.threads == 1) ? 1 : std::min(n, budget);
  const query::Executor executor(
      &db, {.threads = std::max<size_t>(1, budget / fan_out),
            .engine = options.engine,
            .fuse_join_distinct = options.fuse_join_distinct,
            .fuse_min_output_bytes = options.fuse_min_output_bytes,
            .ctx = options.ctx});
  std::vector<ExecOutput> outs(plans.size());
  // Per-plan profile slots are pre-created by the caller (deque children:
  // stable pointers), so each worker writes only its own subtree — no
  // synchronization needed on the profile during the fan-out.
  // The catch keeps pool workers throw-free: an injected or real
  // std::bad_alloc inside a query surfaces as this plan's Status instead
  // of terminating the process (ThreadPool tasks must not throw).
  auto run_one = [&executor, &plans, &outs, &options, profs](size_t i) {
    obs::ProfileNode* prof =
        (profs != nullptr && i < profs->size()) ? (*profs)[i] : nullptr;
    obs::Span span(prof);
    try {
      if (options.engine == query::ExecEngine::kColumnar) {
        auto result = executor.ExecuteColumnar(*plans[i], prof);
        outs[i].status = result.status();
        if (result.ok()) outs[i].columnar = std::move(result).ValueOrDie();
      } else {
        auto result = executor.ExecuteRowAtATime(*plans[i], prof);
        outs[i].status = result.status();
        if (result.ok()) outs[i].rows = std::move(result).ValueOrDie();
      }
    } catch (const std::exception& e) {
      outs[i].status = Status::ExecutionError(
          std::string("extraction query threw: ") + e.what());
    } catch (...) {
      outs[i].status =
          Status::ExecutionError("extraction query threw a non-exception");
    }
  };
  if (fan_out <= 1) {
    for (size_t i = 0; i < n; ++i) run_one(i);
    return outs;
  }
  // Bound concurrency to fan_out even on a pool larger than the thread
  // budget: submit fan_out drainers over a shared index, not one task
  // per plan.
  std::atomic<size_t> next{0};
  auto drain = [&run_one, &next, n] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= n) return;
      run_one(i);
    }
  };
  if (options.pool != nullptr) {
    std::vector<std::function<void()>> tasks(fan_out, drain);
    options.pool->RunBatch(std::move(tasks));
    return outs;
  }
  ParallelInvoke(fan_out, [&drain](size_t) { drain(); });
  return outs;
}

Result<std::unique_ptr<query::PlanNode>> BuildNodesPlan(const dsl::Rule& rule,
                                                        size_t row_begin,
                                                        size_t row_end) {
  if (rule.body.size() != 1) {
    return Status::Unsupported(
        "Nodes rules with multiple body atoms are not supported; define a "
        "view table or use a single atom");
  }
  const dsl::Atom& atom = rule.body[0];

  // Map head args to body columns.
  std::vector<size_t> columns;
  for (const std::string& head_var : rule.head_args) {
    std::optional<size_t> col;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (atom.args[i].kind == dsl::Term::Kind::kVariable &&
          atom.args[i].variable == head_var) {
        col = i;
        break;
      }
    }
    if (!col.has_value()) {
      return Status::PlanError("head variable " + head_var +
                               " not found in Nodes body");
    }
    columns.push_back(*col);
  }

  // Predicates: constants in args + comparisons.
  std::vector<query::Predicate> predicates;
  for (size_t c = 0; c < atom.args.size(); ++c) {
    if (atom.args[c].kind == dsl::Term::Kind::kConstant) {
      predicates.push_back({c, query::CompareOp::kEq, atom.args[c].constant});
    }
  }
  for (const dsl::Comparison& cmp : rule.comparisons) {
    if (cmp.rhs_is_var) {
      return Status::Unsupported(
          "variable-variable comparisons are not supported in Nodes rules");
    }
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (atom.args[i].kind == dsl::Term::Kind::kVariable &&
          atom.args[i].variable == cmp.lhs_var) {
        query::CompareOp op = query::CompareOp::kEq;
        switch (cmp.op) {
          case dsl::PredOp::kEq: op = query::CompareOp::kEq; break;
          case dsl::PredOp::kNe: op = query::CompareOp::kNe; break;
          case dsl::PredOp::kLt: op = query::CompareOp::kLt; break;
          case dsl::PredOp::kLe: op = query::CompareOp::kLe; break;
          case dsl::PredOp::kGt: op = query::CompareOp::kGt; break;
          case dsl::PredOp::kGe: op = query::CompareOp::kGe; break;
        }
        predicates.push_back({i, op, cmp.rhs_const});
        break;
      }
    }
  }

  auto scan = std::make_unique<query::ScanNode>(atom.relation, predicates);
  if (row_begin != 0 || row_end != SIZE_MAX) {
    scan->SetRowRange(row_begin, row_end);
  }
  return std::unique_ptr<query::PlanNode>(std::make_unique<query::ProjectNode>(
      std::move(scan), columns, rule.head_args, /*distinct=*/true));
}

namespace {

// Executes the Nodes rules: creates real nodes, assigns properties, and
// fills the typed external-key → NodeId table. Queries run concurrently
// (phase 2); node-id assignment applies their results serially in rule
// order (phase 3), so ids are deterministic. Key resolution is typed:
// int64 keys probe the flat table, dictionary keys resolve once per
// distinct code, and only mixed columns (or the row oracle) touch Values.
// With `capture` set (and a single Nodes rule), every applied DISTINCT
// tuple is also recorded so the incremental path can later skip delta
// rows the basis already saw.
Status ExecuteNodesRules(const rel::Database& db, const dsl::Program& program,
                         const ExtractOptions& options,
                         ExtractionResult& result, TypedIdMap& node_ids,
                         obs::ProfileNode* stage, IncrementalState* capture) {
  GRAPHGEN_FAULT_POINT("extract.nodes.plan");
  GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
  CondensedStorage& storage = result.storage;

  // Phase 1: translate each rule into a DISTINCT projection plan.
  std::vector<std::unique_ptr<query::PlanNode>> plans;
  for (const dsl::Rule& rule : program.nodes_rules) {
    GRAPHGEN_ASSIGN_OR_RETURN(std::unique_ptr<query::PlanNode> plan,
                              BuildNodesPlan(rule));
    result.sql.push_back(plan->ToSql());
    plans.push_back(std::move(plan));
  }

  // Phase 2: run the node queries concurrently, one profile slot per rule
  // (created up front so worker threads never append to a shared node).
  std::vector<const query::PlanNode*> refs;
  refs.reserve(plans.size());
  for (const auto& p : plans) refs.push_back(p.get());
  std::vector<obs::ProfileNode*> profs;
  if (stage != nullptr) {
    profs.reserve(plans.size());
    for (size_t r = 0; r < plans.size(); ++r) {
      profs.push_back(stage->AddChild("rule", result.sql[r]));
    }
  }
  std::vector<ExecOutput> outs =
      RunPlans(db, refs, options, stage != nullptr ? &profs : nullptr);

  // Phase 3: apply serially in rule order.
  GRAPHGEN_FAULT_POINT("extract.nodes.apply");
  const bool poll = NeedsCtxPoll(options.ctx);
  const bool record = capture != nullptr && program.nodes_rules.size() == 1;
  for (size_t r = 0; r < program.nodes_rules.size(); ++r) {
    const dsl::Rule& rule = program.nodes_rules[r];
    GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
    GRAPHGEN_RETURN_NOT_OK(outs[r].status);
    result.rows_scanned += outs[r].NumRows();
    if (stage != nullptr) {
      profs[r]->rows = static_cast<int64_t>(outs[r].NumRows());
    }

    // Property columns registered once.
    std::vector<size_t> prop_cols;
    for (size_t i = 1; i < rule.head_args.size(); ++i) {
      prop_cols.push_back(storage.properties().AddColumn(rule.head_args[i]));
    }

    const query::RowsView rows = outs[r].View();
    EndpointColumn key_col(outs[r], 0);
    // Dictionary key columns memoize the resolved node id per code.
    std::vector<int64_t> code_cache;
    if (key_col.kind() == EndpointColumn::Kind::kDict) {
      code_cache.assign(key_col.dict().size(), -1);
    }
    for (size_t ri = 0; ri < rows.NumRows(); ++ri) {
      if (poll && ri % kCancelStrideRows == 0) {
        GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
      }
      if (key_col.IsNull(ri)) continue;
      if (record) {
        capture->node_tuples.insert(
            EncodeNodeTuple(rows, ri, rule.head_args.size()));
      }
      bool fresh = false;
      auto alloc = [&] {
        fresh = true;
        return storage.AddRealNode();
      };
      NodeId id = 0;
      switch (key_col.kind()) {
        case EndpointColumn::Kind::kInt64:
          id = node_ids.ints.GetOrInsert(key_col.Int64(ri), alloc);
          break;
        case EndpointColumn::Kind::kDict: {
          int64_t& c = code_cache[key_col.Code(ri)];
          if (c < 0) {
            const std::string& s = key_col.dict().At(key_col.Code(ri));
            auto it = node_ids.strings.find(std::string_view(s));
            if (it == node_ids.strings.end()) {
              it = node_ids.strings.emplace(s, alloc()).first;
            }
            c = it->second;
          }
          id = static_cast<NodeId>(c);
          break;
        }
        case EndpointColumn::Kind::kValue:
          id = node_ids.GetOrInsertValue(key_col.ValueAt(ri), alloc);
          break;
      }
      if (fresh) {
        // ToStringAt renders dictionary-encoded keys straight from the
        // dictionary entry (identical text to Value::ToString).
        storage.properties().SetExternalKey(id, rows.ToStringAt(ri, 0));
      }
      for (size_t i = 1; i < rule.head_args.size(); ++i) {
        storage.properties().Set(
            id, prop_cols[i - 1],
            rows.IsNullAt(ri, i) ? "" : rows.ToStringAt(ri, i));
      }
    }
  }
  result.real_nodes = storage.NumRealNodes();
  return Status::OK();
}

bool CompareCount(int64_t count, dsl::PredOp op, int64_t threshold) {
  switch (op) {
    case dsl::PredOp::kEq: return count == threshold;
    case dsl::PredOp::kNe: return count != threshold;
    case dsl::PredOp::kLt: return count < threshold;
    case dsl::PredOp::kLe: return count <= threshold;
    case dsl::PredOp::kGt: return count > threshold;
    case dsl::PredOp::kGe: return count >= threshold;
  }
  return false;
}

struct CountPlanParts {
  std::unique_ptr<query::PlanNode> plan;
  std::string sql;
};

// Case 2 of §3.3: a COUNT aggregate forces the full join. Builds the
// whole-chain plan projecting DISTINCT (src, dst, aggvar) so each
// binding counts once per pair. `node_keys` (optional) pushes the Nodes
// filter into the endpoint scans — safe here because ApplyCountConstraint
// skips rows with a dangling src or dst before counting.
Result<CountPlanParts> BuildCountConstraintPlan(
    const JoinChain& chain, const dsl::AggregateConstraint& agg,
    const std::shared_ptr<const query::KeyFilter>& node_keys) {
  // Column offsets of each atom in the concatenated join output.
  std::vector<size_t> offsets(chain.atoms.size(), 0);
  for (size_t i = 1; i < chain.atoms.size(); ++i) {
    offsets[i] = offsets[i - 1] + chain.atoms[i - 1].atom->args.size();
  }
  // Locate the aggregate variable.
  size_t agg_col = 0;
  bool found = false;
  for (size_t i = 0; i < chain.atoms.size() && !found; ++i) {
    const dsl::Atom& atom = *chain.atoms[i].atom;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      if (atom.args[c].kind == dsl::Term::Kind::kVariable &&
          atom.args[c].variable == agg.variable) {
        agg_col = offsets[i] + c;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    return Status::PlanError("COUNT variable not found in join chain");
  }

  // Full left-deep join over the entire chain.
  const size_t last = chain.atoms.size() - 1;
  auto first_scan = std::make_unique<query::ScanNode>(
      chain.atoms[0].atom->relation, chain.atoms[0].predicates);
  if (node_keys != nullptr) {
    first_scan->AddSemiJoin(chain.atoms[0].in_col, node_keys);
    if (last == 0) first_scan->AddSemiJoin(chain.atoms[0].out_col, node_keys);
  }
  std::unique_ptr<query::PlanNode> plan = std::move(first_scan);
  for (size_t k = 1; k < chain.atoms.size(); ++k) {
    auto right = std::make_unique<query::ScanNode>(
        chain.atoms[k].atom->relation, chain.atoms[k].predicates);
    if (node_keys != nullptr && k == last) {
      right->AddSemiJoin(chain.atoms[k].out_col, node_keys);
    }
    size_t left_col = offsets[k - 1] + chain.atoms[k - 1].out_col;
    plan = std::make_unique<query::HashJoinNode>(
        std::move(plan), std::move(right), left_col, chain.atoms[k].in_col);
  }
  size_t src_col = chain.atoms.front().in_col;
  size_t dst_col = offsets.back() + chain.atoms.back().out_col;
  auto project = std::make_unique<query::ProjectNode>(
      std::move(plan), std::vector<size_t>{src_col, dst_col, agg_col},
      std::vector<std::string>{"src", "dst", agg.variable},
      /*distinct=*/true);
  CountPlanParts parts;
  parts.sql = project->ToSql() + "  -- GROUP BY src, dst HAVING COUNT(" +
              agg.variable + ") " + std::string(dsl::PredOpToString(agg.op)) +
              " " + std::to_string(agg.threshold);
  parts.plan = std::move(project);
  return parts;
}

// GROUP BY (src, dst) HAVING COUNT(aggvar) <op> threshold over the
// distinct (src, dst, aggvar) bindings; adds a direct edge per passing
// pair ("co-authored multiple papers together", §1). Edges are emitted in
// ascending (src, dst) order — the counting map iterates in hash-layout
// order, which must never leak into the stored adjacency.
Status ApplyCountConstraint(const ExecOutput& out,
                            const dsl::AggregateConstraint& agg,
                            const TypedIdMap& node_ids, const ExecContext& ctx,
                            ExtractionResult& result) {
  GRAPHGEN_FAULT_POINT("extract.edges.count");
  GRAPHGEN_RETURN_NOT_OK(ctx.Check());
  EndpointColumn src_col(out, 0);
  EndpointColumn dst_col(out, 1);
  RealNodeResolver src(src_col, node_ids);
  RealNodeResolver dst(dst_col, node_ids);
  const size_t n = out.NumRows();
  // The pair-count map is count-constraint scratch, refunded on return;
  // sized for the worst case of all-distinct pairs.
  ScopedCharge scratch;
  GRAPHGEN_RETURN_NOT_OK(scratch.Acquire(
      ctx, n * (sizeof(uint64_t) + sizeof(int64_t)), "COUNT pair map"));
  const bool poll = NeedsCtxPoll(ctx);
  std::unordered_map<uint64_t, int64_t> counts;  // (src << 32 | dst) → count
  for (size_t ri = 0; ri < n; ++ri) {
    if (poll && ri % kCancelStrideRows == 0) {
      GRAPHGEN_RETURN_NOT_OK(ctx.Check());
    }
    if (src_col.IsNull(ri) || dst_col.IsNull(ri)) continue;
    NodeId s = 0;
    NodeId d = 0;
    if (!src.Resolve(ri, &s) || !dst.Resolve(ri, &d)) continue;
    if (s == d) continue;  // self pairs never edges
    ++counts[(static_cast<uint64_t>(s) << 32) | d];
  }
  std::vector<uint64_t> passing;
  passing.reserve(counts.size());
  for (const auto& [pair, count] : counts) {
    if (CompareCount(count, agg.op, agg.threshold)) passing.push_back(pair);
  }
  std::sort(passing.begin(), passing.end());
  // Parity assertion: pairs are unique map keys, so the sorted emission
  // order must be strictly increasing.
  assert(std::adjacent_find(passing.begin(), passing.end()) == passing.end());
  std::vector<std::pair<NodeRef, NodeRef>> batch;
  batch.reserve(passing.size());
  for (uint64_t pair : passing) {
    batch.emplace_back(NodeRef::Real(static_cast<NodeId>(pair >> 32)),
                       NodeRef::Real(static_cast<NodeId>(pair & 0xffffffffull)));
  }
  result.storage.AddEdges(batch);
  return Status::OK();
}

// Planned work for one Edges rule: either a segment list or a
// count-constraint plan, plus the index of its first query unit.
struct EdgeRuleWork {
  std::vector<Segment> segments;
  std::unique_ptr<query::PlanNode> count_plan;
  size_t first_unit = 0;
};

// The full §4.2 pipeline; `capture` (nullable) additionally records the
// incremental-extraction state: node tuples, per-segment emitted pairs,
// boundary maps, the canonical pre-preprocess graph, and the basis
// version vector.
Result<ExtractionResult> ExtractImpl(const rel::Database& db,
                                     const dsl::Program& program,
                                     const ExtractOptions& options,
                                     IncrementalState* capture) {
  ExtractionResult result;
  TypedIdMap node_ids;
  if (capture != nullptr) {
    *capture = IncrementalState{};
    capture->program = program;
    capture->edge_rules.resize(program.edges_rules.size());
  }

  // One flight-recorder stage node per pipeline phase; all null (and all
  // recording skipped) when observability is off.
  const bool profiling = obs::Enabled();
  obs::ProfileNode* nodes_stage =
      profiling ? result.profile.root.AddChild("nodes") : nullptr;

  WallTimer timer;
  {
    obs::Span span(nodes_stage);
    GRAPHGEN_RETURN_NOT_OK(
        ExecuteNodesRules(db, program, options, result, node_ids, nodes_stage,
                          capture));
  }
  result.nodes_seconds = timer.Seconds();
  if (nodes_stage != nullptr) {
    nodes_stage->rows = static_cast<int64_t>(result.real_nodes);
  }

  timer.Restart();
  obs::ProfileNode* edges_stage =
      profiling ? result.profile.root.AddChild("edges") : nullptr;

  // Optional semi-join pushdown: bucket the node keys once; edge-rule
  // endpoint scans then drop dangling rows inside the query. The typed
  // table is already bucketed the way KeyFilter wants it.
  std::shared_ptr<const query::KeyFilter> node_keys;
  if (options.semi_join_pushdown) {
    auto filter = std::make_shared<query::KeyFilter>();
    node_ids.ints.ForEach(
        [&](int64_t k, uint32_t) { filter->ints.insert(k); });
    for (const auto& [s, id] : node_ids.strings) {
      (void)id;
      filter->strings.insert(s);
    }
    for (const auto& [v, id] : node_ids.others) {
      (void)id;
      filter->others.insert(v);
    }
    node_keys = std::move(filter);
  }

  // Phase 1: analyze every Edges rule and collect all query units.
  std::vector<EdgeRuleWork> works;
  std::vector<const query::PlanNode*> units;
  std::vector<obs::ProfileNode*> unit_profs;
  obs::ProfileNode* plan_node =
      edges_stage != nullptr ? edges_stage->AddChild("plan") : nullptr;
  {
    obs::Span plan_span(plan_node);
    GRAPHGEN_FAULT_POINT("extract.edges.plan");
    for (size_t rule_idx = 0; rule_idx < program.edges_rules.size();
         ++rule_idx) {
      GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
      const dsl::Rule& rule = program.edges_rules[rule_idx];
      GRAPHGEN_ASSIGN_OR_RETURN(
          JoinChain chain,
          AnalyzeEdgesRule(rule, db, options.large_output_factor));

      EdgeRuleWork work;
      work.first_unit = units.size();
      if (rule.count_constraint.has_value()) {
        GRAPHGEN_ASSIGN_OR_RETURN(
            CountPlanParts parts,
            BuildCountConstraintPlan(chain, *rule.count_constraint,
                                     node_keys));
        result.sql.push_back(parts.sql);
        work.count_plan = std::move(parts.plan);
        units.push_back(work.count_plan.get());
        if (edges_stage != nullptr) {
          unit_profs.push_back(
              edges_stage->AddChild("count_query", parts.sql));
        }
        // A COUNT recount cannot be patched from deltas.
        if (capture != nullptr) {
          capture->edge_rules[rule_idx].patchable = false;
        }
      } else {
        // dst-side pushdown is only sound on a single-segment chain: with
        // multiple segments the assembly loop allocates the src boundary's
        // virtual node before checking dst, so early dst filtering would
        // drop boundary values whose rows never produce an edge.
        const bool single_segment = !chain.HasLargeOutputJoin();
        GRAPHGEN_ASSIGN_OR_RETURN(
            work.segments,
            BuildSegments(chain, node_keys,
                          single_segment ? node_keys : nullptr));
        for (const Segment& seg : work.segments) {
          result.sql.push_back(seg.sql);
          units.push_back(seg.plan.get());
          if (edges_stage != nullptr) {
            unit_profs.push_back(edges_stage->AddChild("segment", seg.sql));
          }
        }
        if (capture != nullptr) {
          EdgeRuleState& ers = capture->edge_rules[rule_idx];
          for (const Segment& seg : work.segments) {
            ers.segment_shape.emplace_back(seg.first_atom, seg.last_atom);
          }
          ers.seen_pairs.resize(work.segments.size());
        }
      }
      works.push_back(std::move(work));
    }
    if (plan_node != nullptr) {
      plan_node->AddStat("rules",
                         static_cast<double>(program.edges_rules.size()));
      plan_node->AddStat("queries", static_cast<double>(units.size()));
    }
  }

  // Phase 2: execute all segment/count queries, rules concurrently.
  std::vector<ExecOutput> outs = RunPlans(
      db, units, options, edges_stage != nullptr ? &unit_profs : nullptr);

  // Phase 3: assemble the condensed graph serially in (rule, segment,
  // row) order. Endpoint keys stay typed end to end: dictionary codes and
  // raw int64 keys resolve through flat maps and per-code caches; no
  // Value is constructed on this loop for typed columns. Emission order
  // does not leak into the result — the canonicalization pass below
  // renumbers virtual ids and sorts adjacency.
  std::unordered_map<uint64_t, TypedIdMap> virtual_maps;
  auto boundary_map = [&virtual_maps](size_t rule,
                                      size_t boundary) -> TypedIdMap& {
    return virtual_maps[(static_cast<uint64_t>(rule) << 32) | boundary];
  };
  obs::ProfileNode* assembly_node =
      edges_stage != nullptr ? edges_stage->AddChild("assembly") : nullptr;
  WallTimer assembly_timer;
  GRAPHGEN_FAULT_POINT("extract.edges.assembly");
  const bool assembly_poll = NeedsCtxPoll(options.ctx);
  for (size_t rule_idx = 0; rule_idx < works.size(); ++rule_idx) {
    EdgeRuleWork& work = works[rule_idx];
    GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
    if (work.count_plan != nullptr) {
      ExecOutput& out = outs[work.first_unit];
      GRAPHGEN_RETURN_NOT_OK(out.status);
      result.rows_scanned += out.NumRows();
      if (assembly_node != nullptr) {
        unit_profs[work.first_unit]->rows =
            static_cast<int64_t>(out.NumRows());
      }
      GRAPHGEN_RETURN_NOT_OK(ApplyCountConstraint(
          out, *program.edges_rules[rule_idx].count_constraint, node_ids,
          options.ctx, result));
      continue;
    }

    for (size_t si = 0; si < work.segments.size(); ++si) {
      const Segment& seg = work.segments[si];
      ExecOutput& out = outs[work.first_unit + si];
      GRAPHGEN_RETURN_NOT_OK(out.status);
      result.rows_scanned += out.NumRows();
      if (assembly_node != nullptr) {
        unit_profs[work.first_unit + si]->rows =
            static_cast<int64_t>(out.NumRows());
      }

      const bool first = si == 0;
      const bool last = si + 1 == work.segments.size();

      EndpointColumn src_col(out, 0);
      EndpointColumn dst_col(out, 1);
      std::optional<RealNodeResolver> src_real;
      std::optional<VirtualNodeResolver> src_virt;
      if (first) {
        src_real.emplace(src_col, node_ids);
      } else {
        src_virt.emplace(
            src_col,
            boundary_map(rule_idx, work.segments[si - 1].last_atom),
            result.storage);
      }
      std::optional<RealNodeResolver> dst_real;
      std::optional<VirtualNodeResolver> dst_virt;
      if (last) {
        dst_real.emplace(dst_col, node_ids);
      } else {
        dst_virt.emplace(dst_col, boundary_map(rule_idx, seg.last_atom),
                         result.storage);
      }

      const size_t nrows = out.NumRows();
      // Edge batch scratch: refunded after AddEdges copies it into the
      // adjacency lists.
      ScopedCharge batch_charge;
      GRAPHGEN_RETURN_NOT_OK(batch_charge.Acquire(
          options.ctx, nrows * sizeof(std::pair<NodeRef, NodeRef>),
          "assembly edge batch"));
      std::vector<std::pair<NodeRef, NodeRef>> batch;
      batch.reserve(nrows);
      for (size_t ri = 0; ri < nrows; ++ri) {
        if (assembly_poll && ri % kCancelStrideRows == 0) {
          GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
        }
        // Both NULL checks come before any virtual-node allocation, and a
        // dangling src skips the row before dst is resolved — the patch
        // path mirrors this order exactly.
        if (src_col.IsNull(ri) || dst_col.IsNull(ri)) continue;

        NodeRef from;
        if (first) {
          NodeId id = 0;
          if (!src_real->Resolve(ri, &id)) continue;  // dangling key
          from = NodeRef::Real(id);
        } else {
          from = src_virt->Resolve(ri);
        }
        NodeRef to;
        if (last) {
          NodeId id = 0;
          if (!dst_real->Resolve(ri, &id)) continue;
          to = NodeRef::Real(id);
        } else {
          to = dst_virt->Resolve(ri);
        }
        batch.emplace_back(from, to);
        if (capture != nullptr) {
          capture->edge_rules[rule_idx].seen_pairs[si].insert(
              PackPair(from, to));
        }
      }
      // Batched append: adjacency lists reserve their exact final size,
      // edge order identical to per-row AddEdge.
      result.storage.AddEdges(batch);
    }
  }

  // Canonicalization: renumber virtual ids into key-sorted (rule,
  // boundary) order and sort every adjacency list. This runs on every
  // extraction, so the graph is a pure function of the database contents
  // — the delta-patch path, whose emission order necessarily differs,
  // converges on the identical bits.
  {
    GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
    std::vector<BoundaryMapRef> maps;
    maps.reserve(virtual_maps.size());
    for (auto& [key, map] : virtual_maps) maps.push_back({key, &map});
    const std::vector<uint32_t> perm =
        CanonicalizeVirtualNodes(result.storage, std::move(maps));
    if (capture != nullptr) {
      for (EdgeRuleState& ers : capture->edge_rules) {
        for (auto& set : ers.seen_pairs) {
          std::unordered_set<uint64_t> remapped;
          remapped.reserve(set.size());
          for (uint64_t pair : set) {
            remapped.insert(
                (static_cast<uint64_t>(
                     RemapRaw(static_cast<uint32_t>(pair >> 32), perm))
                 << 32) |
                RemapRaw(static_cast<uint32_t>(pair), perm));
          }
          set = std::move(remapped);
        }
      }
      for (auto& [key, map] : virtual_maps) {
        capture->edge_rules[key >> 32]
            .boundaries[static_cast<size_t>(key & 0xffffffffu)] =
            std::move(map);
      }
    }
  }

  result.edges_seconds = timer.Seconds();
  if (assembly_node != nullptr) {
    assembly_node->seconds = assembly_timer.Seconds();
    assembly_node->AddStat("rows_scanned_total",
                           static_cast<double>(result.rows_scanned));
  }
  if (edges_stage != nullptr) edges_stage->seconds = result.edges_seconds;

  if (capture != nullptr) {
    // Snapshot the canonical pre-preprocess graph, the key tables, and
    // the basis version vector (every referenced table).
    capture->node_ids = std::move(node_ids);
    capture->graph = result.storage;
    capture->rows_scanned = result.rows_scanned;
    auto record_table = [&](const std::string& name) -> Status {
      if (capture->basis.contains(name)) return Status::OK();
      GRAPHGEN_ASSIGN_OR_RETURN(rel::TableVersion tv, db.VersionOf(name));
      capture->basis[name] =
          TableBasis{tv.version, tv.rebase_version, tv.rows};
      return Status::OK();
    };
    for (const dsl::Rule& rule : program.nodes_rules) {
      for (const dsl::Atom& atom : rule.body) {
        GRAPHGEN_RETURN_NOT_OK(record_table(atom.relation));
      }
    }
    for (const dsl::Rule& rule : program.edges_rules) {
      for (const dsl::Atom& atom : rule.body) {
        GRAPHGEN_RETURN_NOT_OK(record_table(atom.relation));
      }
    }
  }

  if (options.preprocess) {
    GRAPHGEN_FAULT_POINT("extract.preprocess");
    GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
    timer.Restart();
    obs::ProfileNode* pp_node =
        profiling ? result.profile.root.AddChild("preprocess") : nullptr;
    PreprocessResult pp =
        ExpandSmallVirtualNodes(result.storage, options.threads);
    (void)pp;
    result.preprocess_seconds = timer.Seconds();
    if (pp_node != nullptr) {
      pp_node->seconds = result.preprocess_seconds;
      pp_node->AddStat("expanded_virtual_nodes",
                       static_cast<double>(pp.expanded_virtual_nodes));
      pp_node->AddStat("rounds", static_cast<double>(pp.rounds));
    }
  }

  result.condensed_edges = result.storage.CountCondensedEdges();
  result.virtual_nodes = result.storage.NumVirtualNodes();
  if (edges_stage != nullptr) {
    edges_stage->rows = static_cast<int64_t>(result.condensed_edges);
    edges_stage->AddStat("virtual_nodes",
                         static_cast<double>(result.virtual_nodes));
  }
  return result;
}

}  // namespace

Result<ExtractionResult> Extract(const rel::Database& db,
                                 const dsl::Program& program,
                                 const ExtractOptions& options) {
  return ExtractImpl(db, program, options, nullptr);
}

Result<ExtractionResult> ExtractWithCapture(const rel::Database& db,
                                            const dsl::Program& program,
                                            const ExtractOptions& options,
                                            IncrementalState& capture) {
  return ExtractImpl(db, program, options, &capture);
}

Result<ExtractionResult> ExtractFromQuery(const rel::Database& db,
                                          std::string_view datalog,
                                          const ExtractOptions& options,
                                          IncrementalState* capture) {
  GRAPHGEN_FAULT_POINT("extract.parse");
  GRAPHGEN_ASSIGN_OR_RETURN(dsl::Program program, dsl::Parse(datalog));
  GRAPHGEN_RETURN_NOT_OK(dsl::Validate(program, db));
  GRAPHGEN_ASSIGN_OR_RETURN(ExtractionResult result,
                            ExtractImpl(db, program, options, capture));
  result.profile.query = std::string(datalog);
  return result;
}

std::string DiffExtraction(const ExtractionResult& a,
                           const ExtractionResult& b,
                           bool compare_scan_counts) {
  auto num = [](uint64_t v) { return std::to_string(v); };
  if (a.real_nodes != b.real_nodes) {
    return "real_nodes: " + num(a.real_nodes) + " vs " + num(b.real_nodes);
  }
  if (a.virtual_nodes != b.virtual_nodes) {
    return "virtual_nodes: " + num(a.virtual_nodes) + " vs " +
           num(b.virtual_nodes);
  }
  if (a.condensed_edges != b.condensed_edges) {
    return "condensed_edges: " + num(a.condensed_edges) + " vs " +
           num(b.condensed_edges);
  }
  if (compare_scan_counts && a.rows_scanned != b.rows_scanned) {
    return "rows_scanned: " + num(a.rows_scanned) + " vs " +
           num(b.rows_scanned);
  }
  const CondensedStorage& sa = a.storage;
  const CondensedStorage& sb = b.storage;
  if (sa.NumRealNodes() != sb.NumRealNodes() ||
      sa.NumVirtualNodes() != sb.NumVirtualNodes()) {
    return "storage node counts differ";
  }
  for (size_t i = 0; i < sa.NumRealNodes(); ++i) {
    const NodeRef r = NodeRef::Real(static_cast<uint32_t>(i));
    if (sa.OutEdges(r) != sb.OutEdges(r)) {
      return "out-adjacency of real node " + num(i) + " differs";
    }
    if (sa.InEdges(r) != sb.InEdges(r)) {
      return "in-adjacency of real node " + num(i) + " differs";
    }
  }
  for (size_t v = 0; v < sa.NumVirtualNodes(); ++v) {
    const NodeRef r = NodeRef::Virtual(static_cast<uint32_t>(v));
    if (sa.OutEdges(r) != sb.OutEdges(r)) {
      return "out-adjacency of virtual node " + num(v) + " differs";
    }
    if (sa.InEdges(r) != sb.InEdges(r)) {
      return "in-adjacency of virtual node " + num(v) + " differs";
    }
  }
  const PropertyTable& pa = sa.properties();
  const PropertyTable& pb = sb.properties();
  if (pa.ColumnNames() != pb.ColumnNames()) return "property columns differ";
  const std::vector<std::string> cols = pa.ColumnNames();
  for (size_t i = 0; i < sa.NumRealNodes(); ++i) {
    const NodeId u = static_cast<NodeId>(i);
    if (pa.ExternalKey(u) != pb.ExternalKey(u)) {
      return "external key of node " + num(i) + " differs";
    }
    for (const std::string& c : cols) {
      if (pa.GetByName(u, c) != pb.GetByName(u, c)) {
        return "property '" + c + "' of node " + num(i) + " differs";
      }
    }
  }
  return "";
}

}  // namespace graphgen::planner
