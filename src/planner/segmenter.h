#ifndef GRAPHGEN_PLANNER_SEGMENTER_H_
#define GRAPHGEN_PLANNER_SEGMENTER_H_

#include <memory>
#include <vector>

#include "planner/join_analysis.h"

namespace graphgen::planner {

/// One executable segment of a join chain (§4.2 Step 3): a maximal run of
/// atoms with only small-output joins between them. The segment's joins
/// are handed to the database; the large-output joins at its ends are
/// *postponed* and realized as virtual nodes.
struct Segment {
  size_t first_atom = 0;
  size_t last_atom = 0;
  std::unique_ptr<query::PlanNode> plan;  // projects (in_value, out_value)
  std::string sql;
};

/// Splits the chain at its large-output boundaries and builds one
/// DISTINCT-projecting query plan per segment. A chain with no
/// large-output joins yields a single segment computing (ID1, ID2)
/// directly (the "expand via the database" case).
///
/// `src_keys` / `dst_keys` are optional semi-join pushdowns of the Nodes
/// filter: when set, the first segment's ID1-binding scan drops rows
/// whose key is not a real node, and likewise the last segment's
/// ID2-binding scan. The extractor only passes `dst_keys` for
/// single-segment chains — on a multi-segment chain the assembly loop
/// allocates a virtual node for the boundary value *before* it checks the
/// dst key, so filtering dst rows early would change virtual-node
/// numbering (src-side pushdown is always safe: a dangling src row is
/// skipped before any side effect).
Result<std::vector<Segment>> BuildSegments(
    const JoinChain& chain,
    std::shared_ptr<const query::KeyFilter> src_keys = nullptr,
    std::shared_ptr<const query::KeyFilter> dst_keys = nullptr);

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_SEGMENTER_H_
