#ifndef GRAPHGEN_PLANNER_SEGMENTER_H_
#define GRAPHGEN_PLANNER_SEGMENTER_H_

#include <memory>
#include <vector>

#include "planner/join_analysis.h"

namespace graphgen::planner {

/// One executable segment of a join chain (§4.2 Step 3): a maximal run of
/// atoms with only small-output joins between them. The segment's joins
/// are handed to the database; the large-output joins at its ends are
/// *postponed* and realized as virtual nodes.
struct Segment {
  size_t first_atom = 0;
  size_t last_atom = 0;
  std::unique_ptr<query::PlanNode> plan;  // projects (in_value, out_value)
  std::string sql;
};

/// Splits the chain at its large-output boundaries and builds one
/// DISTINCT-projecting query plan per segment. A chain with no
/// large-output joins yields a single segment computing (ID1, ID2)
/// directly (the "expand via the database" case).
Result<std::vector<Segment>> BuildSegments(const JoinChain& chain);

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_SEGMENTER_H_
