#ifndef GRAPHGEN_PLANNER_SEGMENTER_H_
#define GRAPHGEN_PLANNER_SEGMENTER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "planner/join_analysis.h"

namespace graphgen::planner {

/// One executable segment of a join chain (§4.2 Step 3): a maximal run of
/// atoms with only small-output joins between them. The segment's joins
/// are handed to the database; the large-output joins at its ends are
/// *postponed* and realized as virtual nodes.
struct Segment {
  size_t first_atom = 0;
  size_t last_atom = 0;
  std::unique_ptr<query::PlanNode> plan;  // projects (in_value, out_value)
  std::string sql;
};

/// Splits the chain at its large-output boundaries and builds one
/// DISTINCT-projecting query plan per segment. A chain with no
/// large-output joins yields a single segment computing (ID1, ID2)
/// directly (the "expand via the database" case).
///
/// `src_keys` / `dst_keys` are optional semi-join pushdowns of the Nodes
/// filter: when set, the first segment's ID1-binding scan drops rows
/// whose key is not a real node, and likewise the last segment's
/// ID2-binding scan. The extractor only passes `dst_keys` for
/// single-segment chains — on a multi-segment chain the assembly loop
/// allocates a virtual node for the boundary value *before* it checks the
/// dst key, so filtering dst rows early would change virtual-node
/// numbering (src-side pushdown is always safe: a dangling src row is
/// skipped before any side effect).
Result<std::vector<Segment>> BuildSegments(
    const JoinChain& chain,
    std::shared_ptr<const query::KeyFilter> src_keys = nullptr,
    std::shared_ptr<const query::KeyFilter> dst_keys = nullptr);

/// The (first_atom, last_atom) pairs BuildSegments would produce, without
/// building plans. The incremental patch path compares this against the
/// shape its basis was extracted with: catalog statistics move as tables
/// grow, and a changed large-output split voids the cached per-segment
/// state (segmentation drift → full re-extraction).
std::vector<std::pair<size_t, size_t>> SegmentShapes(const JoinChain& chain);

/// Restricts one atom's scan to the half-open row window [begin, end) —
/// the delta-scan mode of incremental extraction.
struct AtomRange {
  size_t atom = 0;
  size_t begin = 0;
  size_t end = SIZE_MAX;
};

/// A semi-join key filter attached to one atom's scan column. The
/// incremental patch path seeds these from a delta's join keys and
/// propagates them outward (Yannakakis-style reduction), so a pass whose
/// delta touches a handful of rows scans the neighboring atoms with
/// near-empty filters instead of re-running the full joins. Dropping
/// rows by join-key membership is sound because a row whose key is
/// outside the set (or NULL) cannot join with the delta side at all.
struct AtomSemiJoin {
  size_t atom = 0;
  size_t column = 0;
  std::shared_ptr<const query::KeyFilter> keys;
};

/// Builds a single segment plan over atoms [first_atom, last_atom] with
/// per-atom row ranges. The incremental patch path uses this for its
/// delta passes: one pass per changed atom (that atom's scan ranged past
/// the basis watermark, the others full), plus new-node passes where
/// `src_keys`/`dst_keys` carry only the keys that just became real nodes.
/// Unlike BuildSegments, `dst_keys` attaches regardless of segment
/// position — sound for patching because every boundary virtual node a
/// filtered-out row would have allocated already exists in the basis.
Result<Segment> BuildSegmentVariant(
    const JoinChain& chain, size_t first_atom, size_t last_atom,
    std::shared_ptr<const query::KeyFilter> src_keys,
    std::shared_ptr<const query::KeyFilter> dst_keys,
    const std::vector<AtomRange>& ranges,
    const std::vector<AtomSemiJoin>& filters = {});

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_SEGMENTER_H_
