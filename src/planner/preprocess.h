#ifndef GRAPHGEN_PLANNER_PREPROCESS_H_
#define GRAPHGEN_PLANNER_PREPROCESS_H_

#include <cstddef>

#include "graph/storage.h"

namespace graphgen::planner {

struct PreprocessResult {
  size_t expanded_virtual_nodes = 0;
  size_t rounds = 0;
};

/// §4.2 Step 6: expands every virtual node whose expansion does not grow
/// the graph — in*out <= in + out + 1 — replacing it with direct edges
/// from its in-neighbors to its out-neighbors. Candidates are found in
/// parallel; mutations are applied serially (the concurrency issues the
/// paper alludes to are sidestepped by phase separation). Runs to a
/// fixpoint since expanding one node can shrink its neighbors' degrees.
PreprocessResult ExpandSmallVirtualNodes(CondensedStorage& storage,
                                         size_t threads = 0);

/// §6.5 guidance: expand the whole graph when the size increase is small.
/// Returns true when expanded_edges <= (1 + threshold) * condensed size.
bool ShouldExpand(const CondensedStorage& storage, double threshold = 0.2);

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_PREPROCESS_H_
