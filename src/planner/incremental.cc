#include "planner/incremental.h"

#include <algorithm>
#include <optional>
#include <string_view>
#include <utility>

#include "common/cancel.h"
#include "common/faultpoints.h"
#include "common/timer.h"
#include "planner/extractor_internal.h"
#include "planner/join_analysis.h"
#include "planner/preprocess.h"
#include "planner/segmenter.h"

namespace graphgen::planner {

std::vector<uint32_t> CanonicalizeVirtualNodes(CondensedStorage& storage,
                                               std::vector<BoundaryMapRef>
                                                   maps) {
  const size_t nv = storage.NumVirtualNodes();
  std::vector<uint32_t> perm(nv, kInvalidNode);
  std::sort(maps.begin(), maps.end(),
            [](const BoundaryMapRef& a, const BoundaryMapRef& b) {
              return a.key < b.key;
            });
  uint32_t next = 0;
  for (const BoundaryMapRef& m : maps) {
    TypedIdMap& map = *m.map;
    std::vector<std::pair<int64_t, uint32_t>> ints;
    ints.reserve(map.ints.size());
    map.ints.ForEach([&](int64_t k, uint32_t v) { ints.emplace_back(k, v); });
    std::sort(ints.begin(), ints.end());
    for (const auto& [k, v] : ints) {
      (void)k;
      perm[v] = next++;
    }
    std::vector<std::pair<std::string_view, uint32_t>> strs;
    strs.reserve(map.strings.size());
    for (const auto& [s, v] : map.strings) strs.emplace_back(s, v);
    std::sort(strs.begin(), strs.end());
    for (const auto& [s, v] : strs) {
      (void)s;
      perm[v] = next++;
    }
    std::vector<std::pair<const rel::Value*, uint32_t>> vals;
    vals.reserve(map.others.size());
    for (const auto& [val, v] : map.others) vals.emplace_back(&val, v);
    std::sort(vals.begin(), vals.end(),
              [](const auto& a, const auto& b) { return *a.first < *b.first; });
    for (const auto& [val, v] : vals) {
      (void)val;
      perm[v] = next++;
    }
  }
  // Every virtual node is allocated through exactly one boundary map, so
  // this tail is defensive only (it keeps the permutation total).
  for (uint32_t v = 0; v < nv; ++v) {
    if (perm[v] == kInvalidNode) perm[v] = next++;
  }
  storage.PermuteVirtualNodes(perm);
  for (const BoundaryMapRef& m : maps) {
    m.map->ints.ForEachMutable([&](int64_t, uint32_t& v) { v = perm[v]; });
    for (auto& [s, v] : m.map->strings) {
      (void)s;
      v = perm[v];
    }
    for (auto& [val, v] : m.map->others) {
      (void)val;
      v = perm[v];
    }
  }
  storage.SortAdjacency();
  return perm;
}

size_t IncrementalState::MemoryBytes() const {
  size_t total = graph.MemoryBytes() + graph.properties().MemoryBytes();
  total += node_ids.MemoryBytes();
  for (const auto& t : node_tuples) total += t.capacity() + 56;
  for (const auto& er : edge_rules) {
    for (const auto& s : er.seen_pairs) {
      total += s.size() * 16 + s.bucket_count() * 8;
    }
    for (const auto& [b, m] : er.boundaries) {
      (void)b;
      total += m.MemoryBytes();
    }
  }
  return total;
}

namespace {

// Remaps one packed pair set through the canonical permutation.
void RemapPairSet(std::unordered_set<uint64_t>& set,
                  const std::vector<uint32_t>& perm) {
  std::unordered_set<uint64_t> remapped;
  remapped.reserve(set.size());
  for (uint64_t pair : set) {
    remapped.insert(
        (static_cast<uint64_t>(RemapRaw(static_cast<uint32_t>(pair >> 32),
                                        perm))
         << 32) |
        RemapRaw(static_cast<uint32_t>(pair), perm));
  }
  set = std::move(remapped);
}

void InsertKey(query::KeyFilter& filter, const rel::Value& v) {
  switch (v.type()) {
    case rel::ValueType::kNull:
      return;  // NULL joins nothing
    case rel::ValueType::kInt64:
      filter.ints.insert(v.AsInt64());
      return;
    case rel::ValueType::kString:
      filter.strings.insert(v.AsString());
      return;
    default:
      filter.others.insert(v);
      return;
  }
}

// Distinct non-NULL values of `col` among rows [begin, end) of `t`,
// optionally restricted to rows whose `via_col` value is in `via`.
std::shared_ptr<query::KeyFilter> CollectKeys(const rel::Table& t, size_t col,
                                              size_t begin, size_t end,
                                              const query::KeyFilter* via,
                                              size_t via_col) {
  auto out = std::make_shared<query::KeyFilter>();
  end = std::min(end, t.NumRows());
  for (size_t i = begin; i < end; ++i) {
    if (via != nullptr && !via->Contains(t.ValueAt(i, via_col))) continue;
    InsertKey(*out, t.ValueAt(i, col));
  }
  return out;
}

// Yannakakis-style reduction for one patch pass over segment atoms
// [fa, la]: the pass's restriction (a delta row window on `seed`, or a
// key filter on the seed's in/out column for new-node passes) is turned
// into semi-join filters on every other atom's join column, propagated
// hop by hop through the table data. With a small delta the filters are
// tiny, so the pass's joins build over near-empty inputs instead of
// re-joining the full relations. Predicates are ignored while collecting
// (a superset filter is always sound), and NULL join keys are dropped —
// a NULL never matches anything.
std::vector<AtomSemiJoin> ReductionFilters(
    const rel::Database& db, const JoinChain& chain, size_t fa, size_t la,
    size_t seed, size_t seed_begin, size_t seed_end,
    const query::KeyFilter* seed_in, const query::KeyFilter* seed_out) {
  std::vector<AtomSemiJoin> filters;
  if (fa == la) return filters;  // single atom: nothing to reduce
  auto table_of = [&](size_t a) -> const rel::Table* {
    auto tr = db.GetTable(chain.atoms[a].atom->relation);
    return tr.ok() ? *tr : nullptr;
  };
  const rel::Table* seed_table = table_of(seed);
  if (seed_table == nullptr) return filters;
  // Leftward: atom a-1 joins atom a via (a-1).out_col == a.in_col.
  if (seed > fa) {
    std::shared_ptr<const query::KeyFilter> k =
        CollectKeys(*seed_table, chain.atoms[seed].in_col, seed_begin,
                    seed_end, seed_out, chain.atoms[seed].out_col);
    for (size_t a = seed; a-- > fa;) {
      filters.push_back({a, chain.atoms[a].out_col, k});
      if (a == fa) break;
      const rel::Table* t = table_of(a);
      if (t == nullptr) break;
      k = CollectKeys(*t, chain.atoms[a].in_col, 0, SIZE_MAX, k.get(),
                      chain.atoms[a].out_col);
    }
  }
  // Rightward: atom a joins atom a+1 via a.out_col == (a+1).in_col.
  if (seed < la) {
    std::shared_ptr<const query::KeyFilter> k =
        CollectKeys(*seed_table, chain.atoms[seed].out_col, seed_begin,
                    seed_end, seed_in, chain.atoms[seed].in_col);
    for (size_t a = seed + 1; a <= la; ++a) {
      filters.push_back({a, chain.atoms[a].in_col, k});
      if (a == la) break;
      const rel::Table* t = table_of(a);
      if (t == nullptr) break;
      k = CollectKeys(*t, chain.atoms[a].out_col, 0, SIZE_MAX, k.get(),
                      chain.atoms[a].in_col);
    }
  }
  return filters;
}

}  // namespace

Result<PatchAttempt> PatchExtraction(const rel::Database& db,
                                     const IncrementalState& basis,
                                     const ExtractOptions& options) {
  GRAPHGEN_FAULT_POINT("extract.patch");
  GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
  PatchAttempt attempt;
  auto fallback = [&attempt](std::string reason) {
    attempt.patched = false;
    attempt.fallback_reason = std::move(reason);
    return std::move(attempt);
  };
  const dsl::Program& program = basis.program;
  if (basis.edge_rules.size() != program.edges_rules.size()) {
    return fallback("basis state is malformed");
  }

  // ---- 1. Classify every basis table: unchanged, append delta, or void.
  std::map<std::string, std::pair<size_t, size_t>> deltas;  // [wm, rows)
  std::map<std::string, rel::TableVersion> now_versions;
  for (const auto& [name, tb] : basis.basis) {
    auto vr = db.VersionOf(name);
    if (!vr.ok()) return fallback("table " + name + " no longer exists");
    const rel::TableVersion now = std::move(vr).ValueOrDie();
    if (now.rebase_version > tb.version) {
      return fallback("table " + name + " was rebased");
    }
    if (now.rows < tb.rows) return fallback("table " + name + " shrank");
    now_versions[name] = now;
    if (now.version != tb.version || now.rows != tb.rows) {
      deltas[name] = {tb.rows, now.rows};
    }
  }

  // ---- 2. Copy the basis; all splicing happens on the successor state.
  auto next = std::make_shared<IncrementalState>(basis);
  IncrementalState& st = *next;
  ExtractionResult& result = attempt.result;

  // ---- 3. Node delta: DISTINCT over appended key-table rows only; rows
  // whose tuple the basis already applied are skipped, new tuples assign
  // properties last-writer-wins and new keys become real nodes.
  WallTimer timer;
  std::shared_ptr<query::KeyFilter> new_keys;
  bool node_tables_changed = false;
  for (const dsl::Rule& rule : program.nodes_rules) {
    for (const dsl::Atom& atom : rule.body) {
      if (deltas.contains(atom.relation)) node_tables_changed = true;
    }
  }
  if (node_tables_changed) {
    if (program.nodes_rules.size() > 1) {
      // A delta tuple could interleave real-node id assignment or
      // property write order across rules; real ids must never renumber.
      return fallback("node-table delta with multiple Nodes rules");
    }
    const dsl::Rule& rule = program.nodes_rules[0];
    const auto& window = deltas.at(rule.body[0].relation);
    GRAPHGEN_ASSIGN_OR_RETURN(
        std::unique_ptr<query::PlanNode> plan,
        BuildNodesPlan(rule, window.first, window.second));
    result.sql.push_back(plan->ToSql());
    std::vector<const query::PlanNode*> refs{plan.get()};
    std::vector<ExecOutput> outs = RunPlans(db, refs, options);
    GRAPHGEN_RETURN_NOT_OK(outs[0].status);
    result.rows_scanned += outs[0].NumRows();

    std::vector<size_t> prop_cols;
    for (size_t i = 1; i < rule.head_args.size(); ++i) {
      prop_cols.push_back(st.graph.properties().AddColumn(rule.head_args[i]));
    }
    const query::RowsView rows = outs[0].View();
    EndpointColumn key_col(outs[0], 0);
    const bool poll = NeedsCtxPoll(options.ctx);
    for (size_t ri = 0; ri < rows.NumRows(); ++ri) {
      if (poll && ri % kCancelStrideRows == 0) {
        GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
      }
      if (key_col.IsNull(ri)) continue;
      if (!st.node_tuples
               .insert(EncodeNodeTuple(rows, ri, rule.head_args.size()))
               .second) {
        continue;  // the basis already applied this exact tuple
      }
      bool fresh = false;
      auto alloc = [&] {
        fresh = true;
        return st.graph.AddRealNode();
      };
      const rel::Value key = rows.ValueAt(ri, 0);
      const NodeId id = st.node_ids.GetOrInsertValue(key, alloc);
      if (fresh) {
        st.graph.properties().SetExternalKey(id, rows.ToStringAt(ri, 0));
        if (new_keys == nullptr) {
          new_keys = std::make_shared<query::KeyFilter>();
        }
        switch (key.type()) {
          case rel::ValueType::kInt64:
            new_keys->ints.insert(key.AsInt64());
            break;
          case rel::ValueType::kString:
            new_keys->strings.insert(key.AsString());
            break;
          default:
            new_keys->others.insert(key);
            break;
        }
      }
      for (size_t i = 1; i < rule.head_args.size(); ++i) {
        st.graph.properties().Set(
            id, prop_cols[i - 1],
            rows.IsNullAt(ri, i) ? "" : rows.ToStringAt(ri, i));
      }
    }
  }
  result.real_nodes = st.graph.NumRealNodes();
  result.nodes_seconds = timer.Seconds();

  // ---- 4. Edge deltas per rule: one ranged pass per changed atom plus
  // full-range passes keyed to the new node keys (rows the basis skipped
  // as dangling). The per-(rule, segment) pair sets absorb all overlap.
  timer.Restart();
  const bool have_new_nodes = new_keys != nullptr;
  std::shared_ptr<const query::KeyFilter> node_keys;
  if (options.semi_join_pushdown) {
    auto filter = std::make_shared<query::KeyFilter>();
    st.node_ids.ints.ForEach(
        [&](int64_t k, uint32_t) { filter->ints.insert(k); });
    for (const auto& [s, id] : st.node_ids.strings) {
      (void)id;
      filter->strings.insert(s);
    }
    for (const auto& [v, id] : st.node_ids.others) {
      (void)id;
      filter->others.insert(v);
    }
    node_keys = std::move(filter);
  }

  for (size_t r = 0; r < program.edges_rules.size(); ++r) {
    const dsl::Rule& rule = program.edges_rules[r];
    EdgeRuleState& ers = st.edge_rules[r];
    bool changed = false;
    for (const dsl::Atom& atom : rule.body) {
      if (deltas.contains(atom.relation)) changed = true;
    }
    if (!changed && !have_new_nodes) continue;
    if (!ers.patchable) {
      return fallback("COUNT-constraint rule affected by delta");
    }
    GRAPHGEN_ASSIGN_OR_RETURN(
        JoinChain chain,
        AnalyzeEdgesRule(rule, db, options.large_output_factor));
    if (SegmentShapes(chain) != ers.segment_shape) {
      return fallback("join segmentation drifted after appends");
    }

    const size_t nseg = ers.segment_shape.size();
    struct Pass {
      size_t si = 0;
      Segment seg;
    };
    std::vector<Pass> passes;
    for (size_t si = 0; si < nseg; ++si) {
      const auto [fa, la] = ers.segment_shape[si];
      const bool is_first = si == 0;
      const bool is_last = si + 1 == nseg;
      const bool single = nseg == 1;
      const auto src_filter = is_first ? node_keys : nullptr;
      const auto dst_filter = (is_last && single) ? node_keys : nullptr;
      for (size_t a = fa; a <= la; ++a) {
        auto it = deltas.find(chain.atoms[a].atom->relation);
        if (it == deltas.end()) continue;
        GRAPHGEN_ASSIGN_OR_RETURN(
            Segment seg,
            BuildSegmentVariant(
                chain, fa, la, src_filter, dst_filter,
                {{a, it->second.first, it->second.second}},
                ReductionFilters(db, chain, fa, la, a, it->second.first,
                                 it->second.second, nullptr, nullptr)));
        passes.push_back({si, std::move(seg)});
      }
      if (have_new_nodes && is_first) {
        GRAPHGEN_ASSIGN_OR_RETURN(
            Segment seg,
            BuildSegmentVariant(chain, fa, la, new_keys, dst_filter, {},
                                ReductionFilters(db, chain, fa, la, fa, 0,
                                                 SIZE_MAX, new_keys.get(),
                                                 nullptr)));
        passes.push_back({si, std::move(seg)});
      }
      if (have_new_nodes && is_last) {
        GRAPHGEN_ASSIGN_OR_RETURN(
            Segment seg,
            BuildSegmentVariant(chain, fa, la, single ? src_filter : nullptr,
                                new_keys, {},
                                ReductionFilters(db, chain, fa, la, la, 0,
                                                 SIZE_MAX, nullptr,
                                                 new_keys.get())));
        passes.push_back({si, std::move(seg)});
      }
    }

    std::vector<const query::PlanNode*> refs;
    refs.reserve(passes.size());
    for (const Pass& p : passes) refs.push_back(p.seg.plan.get());
    std::vector<ExecOutput> outs = RunPlans(db, refs, options);

    const bool poll = NeedsCtxPoll(options.ctx);
    for (size_t pi = 0; pi < passes.size(); ++pi) {
      Pass& p = passes[pi];
      ExecOutput& out = outs[pi];
      GRAPHGEN_RETURN_NOT_OK(out.status);
      result.rows_scanned += out.NumRows();
      result.sql.push_back(p.seg.sql);
      const bool first = p.si == 0;
      const bool last = p.si + 1 == nseg;
      EndpointColumn src_col(out, 0);
      EndpointColumn dst_col(out, 1);
      std::optional<RealNodeResolver> src_real;
      std::optional<VirtualNodeResolver> src_virt;
      if (first) {
        src_real.emplace(src_col, st.node_ids);
      } else {
        src_virt.emplace(src_col,
                         ers.boundaries[ers.segment_shape[p.si - 1].second],
                         st.graph);
      }
      std::optional<RealNodeResolver> dst_real;
      std::optional<VirtualNodeResolver> dst_virt;
      if (last) {
        dst_real.emplace(dst_col, st.node_ids);
      } else {
        dst_virt.emplace(dst_col,
                         ers.boundaries[ers.segment_shape[p.si].second],
                         st.graph);
      }
      auto& seen = ers.seen_pairs[p.si];
      const size_t nrows = out.NumRows();
      ScopedCharge batch_charge;
      GRAPHGEN_RETURN_NOT_OK(batch_charge.Acquire(
          options.ctx, nrows * sizeof(std::pair<NodeRef, NodeRef>),
          "patch edge batch"));
      std::vector<std::pair<NodeRef, NodeRef>> batch;
      batch.reserve(nrows);
      for (size_t ri = 0; ri < nrows; ++ri) {
        if (poll && ri % kCancelStrideRows == 0) {
          GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
        }
        // Same resolution order as the fresh assembly loop: NULL checks,
        // then src (dangling skips before dst is touched), then dst.
        if (src_col.IsNull(ri) || dst_col.IsNull(ri)) continue;
        NodeRef from;
        if (first) {
          NodeId id = 0;
          if (!src_real->Resolve(ri, &id)) continue;
          from = NodeRef::Real(id);
        } else {
          from = src_virt->Resolve(ri);
        }
        NodeRef to;
        if (last) {
          NodeId id = 0;
          if (!dst_real->Resolve(ri, &id)) continue;
          to = NodeRef::Real(id);
        } else {
          to = dst_virt->Resolve(ri);
        }
        // Only genuinely new condensed pairs are spliced in.
        if (!seen.insert(PackPair(from, to)).second) continue;
        batch.emplace_back(from, to);
      }
      st.graph.AddEdges(batch);
      attempt.new_edges.insert(attempt.new_edges.end(), batch.begin(),
                               batch.end());
    }
  }

  // ---- 5. Re-canonicalize: new virtual nodes interleave into key-sorted
  // order, adjacency re-sorts, and all bookkeeping follows the renumber.
  {
    GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
    std::vector<BoundaryMapRef> maps;
    for (size_t r = 0; r < st.edge_rules.size(); ++r) {
      for (auto& [b, map] : st.edge_rules[r].boundaries) {
        maps.push_back({(static_cast<uint64_t>(r) << 32) | b, &map});
      }
    }
    const std::vector<uint32_t> perm =
        CanonicalizeVirtualNodes(st.graph, std::move(maps));
    for (EdgeRuleState& ers : st.edge_rules) {
      for (auto& set : ers.seen_pairs) RemapPairSet(set, perm);
    }
    for (auto& [from, to] : attempt.new_edges) {
      from = NodeRef::FromRaw(RemapRaw(from.raw(), perm));
      to = NodeRef::FromRaw(RemapRaw(to.raw(), perm));
    }
  }
  result.edges_seconds = timer.Seconds();

  // ---- 6. Materialize the result like a fresh extraction would.
  result.rows_scanned += basis.rows_scanned;
  result.storage = st.graph;
  if (options.preprocess) {
    GRAPHGEN_RETURN_NOT_OK(options.ctx.Check());
    timer.Restart();
    PreprocessResult pp =
        ExpandSmallVirtualNodes(result.storage, options.threads);
    (void)pp;
    result.preprocess_seconds = timer.Seconds();
  }
  result.condensed_edges = result.storage.CountCondensedEdges();
  result.virtual_nodes = result.storage.NumVirtualNodes();

  // ---- 7. Advance the basis to the version vector read in step 1.
  for (auto& [name, tb] : st.basis) {
    const rel::TableVersion& tv = now_versions.at(name);
    tb = TableBasis{tv.version, tv.rebase_version, tv.rows};
  }
  st.rows_scanned = result.rows_scanned;

  attempt.patched = true;
  attempt.state = std::move(next);
  return std::move(attempt);
}

}  // namespace graphgen::planner
