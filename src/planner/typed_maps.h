#ifndef GRAPHGEN_PLANNER_TYPED_MAPS_H_
#define GRAPHGEN_PLANNER_TYPED_MAPS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "relational/value.h"

namespace graphgen::planner {

/// Flat open-addressing map from int64 keys to 32-bit ids (linear probing,
/// power-of-two capacity, no per-node allocation). Insert-only — exactly
/// the shape of the node-id and virtual-id tables. Shared between the
/// extractor's assembly loop and the incremental patch path (which carries
/// these tables across extractions as part of its persistent state).
class FlatInt64Map {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  FlatInt64Map() { Rehash(64); }

  uint32_t Find(int64_t key) const {
    size_t pos = MixInt64(static_cast<uint64_t>(key)) & mask_;
    for (;;) {
      if (used_[pos] == 0) return kNotFound;
      if (keys_[pos] == key) return vals_[pos];
      pos = (pos + 1) & mask_;
    }
  }

  // Existing id of `key`, or the result of make() (invoked exactly once,
  // only for a new key).
  template <typename Make>
  uint32_t GetOrInsert(int64_t key, Make make) {
    if ((size_ + 1) * 4 >= (mask_ + 1) * 3) Grow();
    size_t pos = MixInt64(static_cast<uint64_t>(key)) & mask_;
    for (;;) {
      if (used_[pos] == 0) {
        used_[pos] = 1;
        keys_[pos] = key;
        vals_[pos] = make();
        ++size_;
        return vals_[pos];
      }
      if (keys_[pos] == key) return vals_[pos];
      pos = (pos + 1) & mask_;
    }
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i <= mask_; ++i) {
      if (used_[i] != 0) fn(keys_[i], vals_[i]);
    }
  }

  /// Mutable visit: fn(key, id&) may rewrite the stored id (the canonical
  /// virtual-node renumbering does). Keys must not be changed.
  template <typename Fn>
  void ForEachMutable(Fn fn) {
    for (size_t i = 0; i <= mask_; ++i) {
      if (used_[i] != 0) fn(keys_[i], vals_[i]);
    }
  }

  size_t size() const { return size_; }

  size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(int64_t) +
           vals_.capacity() * sizeof(uint32_t) + used_.capacity();
  }

 private:
  void Rehash(size_t cap) {
    keys_.assign(cap, 0);
    vals_.assign(cap, 0);
    used_.assign(cap, 0);
    mask_ = cap - 1;
  }

  void Grow() {
    std::vector<int64_t> okeys = std::move(keys_);
    std::vector<uint32_t> ovals = std::move(vals_);
    std::vector<uint8_t> oused = std::move(used_);
    Rehash((mask_ + 1) * 2);
    for (size_t i = 0; i < oused.size(); ++i) {
      if (oused[i] == 0) continue;
      size_t pos = MixInt64(static_cast<uint64_t>(okeys[i])) & mask_;
      while (used_[pos] != 0) pos = (pos + 1) & mask_;
      used_[pos] = 1;
      keys_[pos] = okeys[i];
      vals_[pos] = ovals[i];
    }
  }

  std::vector<int64_t> keys_;
  std::vector<uint32_t> vals_;
  std::vector<uint8_t> used_;
  uint64_t mask_ = 0;
  size_t size_ = 0;
};

struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Key → id table bucketed by physical type, replacing the former
/// unordered_map<Value, id>. Value equality never crosses
/// int64/double/string, so bucketing by type preserves the Value-map
/// semantics exactly: integer keys live in a flat open-addressing table,
/// string keys in a heterogeneous-lookup map (probed by dictionary entry
/// without copying), and doubles/exotics in the Value fallback.
struct TypedIdMap {
  FlatInt64Map ints;
  std::unordered_map<std::string, uint32_t, TransparentStringHash,
                     std::equal_to<>>
      strings;
  std::unordered_map<rel::Value, uint32_t, rel::ValueHash> others;

  size_t size() const {
    return ints.size() + strings.size() + others.size();
  }

  std::optional<uint32_t> FindString(std::string_view s) const {
    auto it = strings.find(s);
    if (it == strings.end()) return std::nullopt;
    return it->second;
  }

  // Find by dynamically typed key; `v` must not be NULL.
  std::optional<uint32_t> FindValue(const rel::Value& v) const {
    switch (v.type()) {
      case rel::ValueType::kInt64: {
        const uint32_t id = ints.Find(v.AsInt64());
        if (id == FlatInt64Map::kNotFound) return std::nullopt;
        return id;
      }
      case rel::ValueType::kString:
        return FindString(v.AsString());
      default: {
        auto it = others.find(v);
        if (it == others.end()) return std::nullopt;
        return it->second;
      }
    }
  }

  // Existing id of `v`, or make() (invoked exactly once for a new key).
  template <typename Make>
  uint32_t GetOrInsertValue(const rel::Value& v, Make make) {
    switch (v.type()) {
      case rel::ValueType::kInt64:
        return ints.GetOrInsert(v.AsInt64(), make);
      case rel::ValueType::kString: {
        auto it = strings.find(std::string_view(v.AsString()));
        if (it != strings.end()) return it->second;
        const uint32_t id = make();
        strings.emplace(v.AsString(), id);
        return id;
      }
      default: {
        auto it = others.find(v);
        if (it != others.end()) return it->second;
        const uint32_t id = make();
        others.emplace(v, id);
        return id;
      }
    }
  }

  size_t MemoryBytes() const {
    size_t total = ints.MemoryBytes();
    for (const auto& [s, id] : strings) {
      (void)id;
      total += s.capacity() + 48;
    }
    total += others.size() * 64;
    return total;
  }
};

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_TYPED_MAPS_H_
