#include "planner/segmenter.h"

namespace graphgen::planner {

namespace {

// Builds the plan for atoms [first, last] of the chain: left-deep hash
// joins over the segment's small-output boundaries, then a DISTINCT
// projection of the segment's endpoint columns. `src_keys`/`dst_keys`
// attach Nodes-filter semi-joins to the endpoint scans; `ranges`
// (nullable) restricts individual atoms' scans to a row window.
std::unique_ptr<query::PlanNode> BuildSegmentPlan(
    const JoinChain& chain, size_t first, size_t last,
    const std::shared_ptr<const query::KeyFilter>& src_keys,
    const std::shared_ptr<const query::KeyFilter>& dst_keys,
    const std::vector<AtomRange>* ranges,
    const std::vector<AtomSemiJoin>* filters = nullptr) {
  auto apply_range = [ranges, filters](query::ScanNode* scan,
                                       size_t atom_idx) {
    if (ranges != nullptr) {
      for (const AtomRange& r : *ranges) {
        if (r.atom == atom_idx) scan->SetRowRange(r.begin, r.end);
      }
    }
    if (filters != nullptr) {
      for (const AtomSemiJoin& f : *filters) {
        if (f.atom == atom_idx) scan->AddSemiJoin(f.column, f.keys);
      }
    }
  };
  auto first_scan = std::make_unique<query::ScanNode>(
      chain.atoms[first].atom->relation, chain.atoms[first].predicates);
  apply_range(first_scan.get(), first);
  if (src_keys != nullptr) {
    first_scan->AddSemiJoin(chain.atoms[first].in_col, src_keys);
  }
  if (dst_keys != nullptr && first == last) {
    first_scan->AddSemiJoin(chain.atoms[last].out_col, dst_keys);
  }
  std::unique_ptr<query::PlanNode> plan = std::move(first_scan);
  // Offset of each atom's columns in the concatenated join output.
  size_t prev_offset = 0;
  size_t width = chain.atoms[first].atom->args.size();
  for (size_t k = first + 1; k <= last; ++k) {
    auto right = std::make_unique<query::ScanNode>(
        chain.atoms[k].atom->relation, chain.atoms[k].predicates);
    apply_range(right.get(), k);
    if (dst_keys != nullptr && k == last) {
      right->AddSemiJoin(chain.atoms[k].out_col, dst_keys);
    }
    size_t left_col = prev_offset + chain.atoms[k - 1].out_col;
    plan = std::make_unique<query::HashJoinNode>(
        std::move(plan), std::move(right), left_col, chain.atoms[k].in_col);
    prev_offset = width;
    width += chain.atoms[k].atom->args.size();
  }
  size_t in_col = chain.atoms[first].in_col;  // offset of first atom is 0
  size_t out_col = prev_offset + chain.atoms[last].out_col;
  return std::make_unique<query::ProjectNode>(
      std::move(plan), std::vector<size_t>{in_col, out_col},
      std::vector<std::string>{"src", "dst"}, /*distinct=*/true);
}

}  // namespace

std::vector<std::pair<size_t, size_t>> SegmentShapes(const JoinChain& chain) {
  std::vector<std::pair<size_t, size_t>> shapes;
  size_t first = 0;
  for (size_t i = 0; i <= chain.boundaries.size(); ++i) {
    const bool cut =
        i == chain.boundaries.size() || chain.boundaries[i].large_output;
    if (!cut) continue;
    shapes.emplace_back(first, i);
    first = i + 1;
  }
  return shapes;
}

Result<std::vector<Segment>> BuildSegments(
    const JoinChain& chain,
    std::shared_ptr<const query::KeyFilter> src_keys,
    std::shared_ptr<const query::KeyFilter> dst_keys) {
  const std::vector<std::pair<size_t, size_t>> shapes = SegmentShapes(chain);
  std::vector<Segment> segments;
  segments.reserve(shapes.size());
  for (size_t s = 0; s < shapes.size(); ++s) {
    const bool is_first_segment = s == 0;
    const bool is_last_segment = s + 1 == shapes.size();
    Segment seg;
    seg.first_atom = shapes[s].first;
    seg.last_atom = shapes[s].second;
    seg.plan = BuildSegmentPlan(chain, seg.first_atom, seg.last_atom,
                                is_first_segment ? src_keys : nullptr,
                                is_last_segment ? dst_keys : nullptr,
                                /*ranges=*/nullptr);
    seg.sql = seg.plan->ToSql();
    segments.push_back(std::move(seg));
  }
  return segments;
}

Result<Segment> BuildSegmentVariant(
    const JoinChain& chain, size_t first_atom, size_t last_atom,
    std::shared_ptr<const query::KeyFilter> src_keys,
    std::shared_ptr<const query::KeyFilter> dst_keys,
    const std::vector<AtomRange>& ranges,
    const std::vector<AtomSemiJoin>& filters) {
  if (last_atom >= chain.atoms.size() || first_atom > last_atom) {
    return Status::PlanError("segment atom range out of bounds");
  }
  Segment seg;
  seg.first_atom = first_atom;
  seg.last_atom = last_atom;
  seg.plan = BuildSegmentPlan(chain, first_atom, last_atom, src_keys,
                              dst_keys, &ranges, &filters);
  seg.sql = seg.plan->ToSql();
  return seg;
}

}  // namespace graphgen::planner
