#include "planner/segmenter.h"

namespace graphgen::planner {

namespace {

// Builds the plan for atoms [first, last] of the chain: left-deep hash
// joins over the segment's small-output boundaries, then a DISTINCT
// projection of the segment's endpoint columns. `src_keys`/`dst_keys`
// attach Nodes-filter semi-joins to the endpoint scans.
std::unique_ptr<query::PlanNode> BuildSegmentPlan(
    const JoinChain& chain, size_t first, size_t last,
    const std::shared_ptr<const query::KeyFilter>& src_keys,
    const std::shared_ptr<const query::KeyFilter>& dst_keys) {
  auto first_scan = std::make_unique<query::ScanNode>(
      chain.atoms[first].atom->relation, chain.atoms[first].predicates);
  if (src_keys != nullptr) {
    first_scan->AddSemiJoin(chain.atoms[first].in_col, src_keys);
  }
  if (dst_keys != nullptr && first == last) {
    first_scan->AddSemiJoin(chain.atoms[last].out_col, dst_keys);
  }
  std::unique_ptr<query::PlanNode> plan = std::move(first_scan);
  // Offset of each atom's columns in the concatenated join output.
  size_t prev_offset = 0;
  size_t width = chain.atoms[first].atom->args.size();
  for (size_t k = first + 1; k <= last; ++k) {
    auto right = std::make_unique<query::ScanNode>(
        chain.atoms[k].atom->relation, chain.atoms[k].predicates);
    if (dst_keys != nullptr && k == last) {
      right->AddSemiJoin(chain.atoms[k].out_col, dst_keys);
    }
    size_t left_col = prev_offset + chain.atoms[k - 1].out_col;
    plan = std::make_unique<query::HashJoinNode>(
        std::move(plan), std::move(right), left_col, chain.atoms[k].in_col);
    prev_offset = width;
    width += chain.atoms[k].atom->args.size();
  }
  size_t in_col = chain.atoms[first].in_col;  // offset of first atom is 0
  size_t out_col = prev_offset + chain.atoms[last].out_col;
  return std::make_unique<query::ProjectNode>(
      std::move(plan), std::vector<size_t>{in_col, out_col},
      std::vector<std::string>{"src", "dst"}, /*distinct=*/true);
}

}  // namespace

Result<std::vector<Segment>> BuildSegments(
    const JoinChain& chain,
    std::shared_ptr<const query::KeyFilter> src_keys,
    std::shared_ptr<const query::KeyFilter> dst_keys) {
  std::vector<Segment> segments;
  size_t first = 0;
  for (size_t i = 0; i <= chain.boundaries.size(); ++i) {
    const bool cut =
        i == chain.boundaries.size() || chain.boundaries[i].large_output;
    if (!cut) continue;
    const bool is_first_segment = segments.empty();
    const bool is_last_segment = i == chain.boundaries.size();
    Segment seg;
    seg.first_atom = first;
    seg.last_atom = i;
    seg.plan = BuildSegmentPlan(chain, first, i,
                                is_first_segment ? src_keys : nullptr,
                                is_last_segment ? dst_keys : nullptr);
    seg.sql = seg.plan->ToSql();
    segments.push_back(std::move(seg));
    first = i + 1;
  }
  return segments;
}

}  // namespace graphgen::planner
