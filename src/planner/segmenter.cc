#include "planner/segmenter.h"

namespace graphgen::planner {

namespace {

// Builds the plan for atoms [first, last] of the chain: left-deep hash
// joins over the segment's small-output boundaries, then a DISTINCT
// projection of the segment's endpoint columns.
std::unique_ptr<query::PlanNode> BuildSegmentPlan(const JoinChain& chain,
                                                  size_t first, size_t last) {
  std::unique_ptr<query::PlanNode> plan = std::make_unique<query::ScanNode>(
      chain.atoms[first].atom->relation, chain.atoms[first].predicates);
  // Offset of each atom's columns in the concatenated join output.
  size_t prev_offset = 0;
  size_t width = chain.atoms[first].atom->args.size();
  for (size_t k = first + 1; k <= last; ++k) {
    auto right = std::make_unique<query::ScanNode>(
        chain.atoms[k].atom->relation, chain.atoms[k].predicates);
    size_t left_col = prev_offset + chain.atoms[k - 1].out_col;
    plan = std::make_unique<query::HashJoinNode>(
        std::move(plan), std::move(right), left_col, chain.atoms[k].in_col);
    prev_offset = width;
    width += chain.atoms[k].atom->args.size();
  }
  size_t in_col = chain.atoms[first].in_col;  // offset of first atom is 0
  size_t out_col = prev_offset + chain.atoms[last].out_col;
  return std::make_unique<query::ProjectNode>(
      std::move(plan), std::vector<size_t>{in_col, out_col},
      std::vector<std::string>{"src", "dst"}, /*distinct=*/true);
}

}  // namespace

Result<std::vector<Segment>> BuildSegments(const JoinChain& chain) {
  std::vector<Segment> segments;
  size_t first = 0;
  for (size_t i = 0; i <= chain.boundaries.size(); ++i) {
    const bool cut =
        i == chain.boundaries.size() || chain.boundaries[i].large_output;
    if (!cut) continue;
    Segment seg;
    seg.first_atom = first;
    seg.last_atom = i;
    seg.plan = BuildSegmentPlan(chain, first, i);
    seg.sql = seg.plan->ToSql();
    segments.push_back(std::move(seg));
    first = i + 1;
  }
  return segments;
}

}  // namespace graphgen::planner
