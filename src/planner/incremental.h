#ifndef GRAPHGEN_PLANNER_INCREMENTAL_H_
#define GRAPHGEN_PLANNER_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "graph/storage.h"
#include "planner/extractor.h"
#include "planner/typed_maps.h"

namespace graphgen::planner {

/// One table's version state at the time a graph was extracted — the
/// entry of the version vector a cached extraction records as its basis.
/// The table is patchable from this basis iff its current rebase_version
/// is still <= version (only appends happened since) and its row count
/// did not shrink; `rows` is the delta-scan watermark.
struct TableBasis {
  uint64_t version = 0;
  uint64_t rebase_version = 0;
  size_t rows = 0;
};

/// Per-Edges-rule dedup state: which (src, dst) condensed pairs each
/// segment has already emitted (so delta tuples re-deriving an existing
/// pair emit nothing), the segment shape the basis was planned with (a
/// drift in the large-output segmentation after appends voids the state),
/// and the boundary-value → virtual-node-id maps.
struct EdgeRuleState {
  /// False for COUNT-constraint rules: their GROUP BY recount cannot be
  /// patched from deltas, so any change to their tables (or to the node
  /// set) falls back to a full re-extraction.
  bool patchable = true;
  /// (first_atom, last_atom) per segment, for the drift check.
  std::vector<std::pair<size_t, size_t>> segment_shape;
  /// Per segment: PackPair(from, to) of every emitted condensed edge.
  std::vector<std::unordered_set<uint64_t>> seen_pairs;
  /// Boundary atom index → key map. Ids are storage virtual ids, kept
  /// canonical by the renumbering pass after every (re-)extraction.
  std::map<size_t, TypedIdMap> boundaries;
};

/// Everything needed to advance a cached extraction by table deltas
/// instead of re-running it: the program, the version-vector basis, the
/// first-occurrence sets (node keys, node tuples, per-segment emitted
/// pairs, boundary maps), and the canonical pre-preprocess condensed
/// graph. Produced by ExtractWithCapture, advanced by PatchExtraction.
/// Immutable once published (the service shares it under shared_ptr);
/// PatchExtraction copies it and returns the successor state.
struct IncrementalState {
  dsl::Program program;
  /// Version vector over every table the program references.
  std::map<std::string, TableBasis> basis;

  /// Real-node key → NodeId (append-only; real ids never renumber).
  TypedIdMap node_ids;
  /// Injectively encoded DISTINCT node tuples the basis applied, used to
  /// skip already-seen delta tuples and to replay property writes with
  /// the same last-writer-wins outcome as a fresh run. Only populated for
  /// single-Nodes-rule programs; with several Nodes rules a node-table
  /// delta could interleave id assignment across rules, so those fall
  /// back to a cold run instead.
  std::unordered_set<std::string> node_tuples;

  /// One entry per Edges rule, in program order.
  std::vector<EdgeRuleState> edge_rules;

  /// The canonical condensed graph *before* §4.2 Step 6 preprocessing
  /// (patches splice edges into this, then re-run preprocessing on a
  /// copy), adjacency sorted, virtual ids in canonical key order.
  CondensedStorage graph;

  /// rows_scanned of the basis extraction; patched results report this
  /// plus the delta rows actually scanned.
  uint64_t rows_scanned = 0;

  size_t MemoryBytes() const;
};

/// Runs a full extraction and fills `capture` so later table appends can
/// be patched in. The extraction result is identical to plain Extract().
Result<ExtractionResult> ExtractWithCapture(const rel::Database& db,
                                            const dsl::Program& program,
                                            const ExtractOptions& options,
                                            IncrementalState& capture);

/// Outcome of a patch attempt. `patched == false` is the *soft* fallback:
/// the delta could not be applied safely (table rebased, segmentation
/// drifted, count-constraint rule touched, multi-Nodes-rule node delta)
/// and the caller should run a cold extraction instead;
/// `fallback_reason` says why. Hard failures (cancellation, deadline,
/// execution errors) surface as the Result's error status.
struct PatchAttempt {
  bool patched = false;
  std::string fallback_reason;
  /// Valid when patched: bitwise identical to a fresh Extract() against
  /// the current database (DiffExtraction with compare_scan_counts=false
  /// returns "" — patching legitimately scans only the delta rows).
  ExtractionResult result;
  /// Valid when patched: the successor state whose basis is the current
  /// version vector.
  std::shared_ptr<IncrementalState> state;
  /// Valid when patched: the condensed edges this patch spliced in, in
  /// the final canonical numbering of `state->graph` (pre-preprocess).
  /// Representation-level incremental materialization (the EXP overlay
  /// fast path) derives its dirty set from these.
  std::vector<std::pair<NodeRef, NodeRef>> new_edges;
};

/// Attempts to advance `basis` to the database's current state by running
/// the program's queries only over appended rows (plus targeted passes
/// for rows whose endpoints became real nodes), splicing the genuinely
/// new nodes/edges into the basis graph, and re-canonicalizing.
Result<PatchAttempt> PatchExtraction(const rel::Database& db,
                                     const IncrementalState& basis,
                                     const ExtractOptions& options = {});

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_INCREMENTAL_H_
