#include "planner/preprocess.h"

#include <algorithm>
#include <vector>

#include "common/parallel.h"
#include "common/sync.h"

namespace graphgen::planner {

PreprocessResult ExpandSmallVirtualNodes(CondensedStorage& storage,
                                         size_t threads) {
  PreprocessResult result;
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    const size_t nv = storage.NumVirtualNodes();
    std::vector<uint32_t> candidates;
    Mutex mu;
    ParallelFor(
        nv,
        [&](size_t begin, size_t end) {
          std::vector<uint32_t> local;
          for (size_t v = begin; v < end; ++v) {
            const size_t in =
                storage.InEdges(NodeRef::Virtual(static_cast<uint32_t>(v)))
                    .size();
            const size_t out =
                storage.OutEdges(NodeRef::Virtual(static_cast<uint32_t>(v)))
                    .size();
            if (in == 0 && out == 0) continue;  // already expanded/husk
            if (in * out <= in + out + 1) {
              local.push_back(static_cast<uint32_t>(v));
            }
          }
          if (!local.empty()) {
            MutexLock guard(mu);
            candidates.insert(candidates.end(), local.begin(), local.end());
          }
        },
        threads);
    // Chunks append in thread-arrival order; restore index order so the
    // apply pass (and therefore the stored adjacency) is deterministic
    // for every thread count.
    std::sort(candidates.begin(), candidates.end());
    // Apply serially: expansion mutates shared adjacency. Re-check the
    // condition because an earlier expansion in this round may have grown
    // this node's degree.
    for (uint32_t v : candidates) {
      const size_t in = storage.InEdges(NodeRef::Virtual(v)).size();
      const size_t out = storage.OutEdges(NodeRef::Virtual(v)).size();
      if (in == 0 && out == 0) continue;
      if (in * out <= in + out + 1) {
        storage.ExpandVirtualNode(v);
        ++result.expanded_virtual_nodes;
        changed = true;
      }
    }
  }
  storage.CompactVirtualNodes();
  return result;
}

bool ShouldExpand(const CondensedStorage& storage, double threshold) {
  const uint64_t condensed = storage.CountCondensedEdges() +
                             storage.NumVirtualNodes();
  const uint64_t expanded = storage.CountExpandedEdges();
  return static_cast<double>(expanded) <=
         (1.0 + threshold) * static_cast<double>(condensed);
}

}  // namespace graphgen::planner
