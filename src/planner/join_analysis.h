#ifndef GRAPHGEN_PLANNER_JOIN_ANALYSIS_H_
#define GRAPHGEN_PLANNER_JOIN_ANALYSIS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "query/plan.h"
#include "relational/database.h"

namespace graphgen::planner {

/// One atom of an Edges rule after chain ordering. `in_col` is the column
/// joining with the previous atom (or binding ID1 for the first atom);
/// `out_col` joins with the next atom (or binds ID2 for the last).
struct ChainAtom {
  const dsl::Atom* atom = nullptr;
  size_t in_col = 0;
  size_t out_col = 0;
  /// Selection predicates from constant arguments and comparisons.
  std::vector<query::Predicate> predicates;
};

/// One join boundary between consecutive chain atoms.
struct JoinBoundary {
  std::string variable;
  uint64_t left_rows = 0;
  uint64_t right_rows = 0;
  uint64_t distinct_values = 0;
  double estimated_output = 0.0;
  /// |L||R|/d > factor*(|L|+|R|) — the paper's uniform-distribution test
  /// (§4.2 Step 2).
  bool large_output = false;
};

/// An Edges rule rewritten as a join chain R1(ID1,a1) ⋈ R2(a1,a2) ⋈ ...
/// with per-boundary selectivity analysis.
struct JoinChain {
  std::vector<ChainAtom> atoms;
  std::vector<JoinBoundary> boundaries;  // size = atoms.size() - 1

  bool HasLargeOutputJoin() const {
    for (const auto& b : boundaries) {
      if (b.large_output) return true;
    }
    return false;
  }
};

/// Orders the body atoms of an acyclic Edges rule into a chain from the
/// atom binding `ID1` to the atom binding `ID2` and classifies each join
/// boundary as large-output or not using catalog statistics.
/// `large_output_factor` is the constant 2 of the paper's formula;
/// set to 0 to force every boundary large (always condense).
Result<JoinChain> AnalyzeEdgesRule(const dsl::Rule& rule,
                                   const rel::Database& db,
                                   double large_output_factor = 2.0);

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_JOIN_ANALYSIS_H_
