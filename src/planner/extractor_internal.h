#ifndef GRAPHGEN_PLANNER_EXTRACTOR_INTERNAL_H_
#define GRAPHGEN_PLANNER_EXTRACTOR_INTERNAL_H_

// Shared plumbing between the cold extraction pipeline (extractor.cc) and
// the incremental delta-patch path (incremental.cc): typed endpoint
// readers, key→id resolvers, the concurrent plan runner, and the
// canonical virtual-node renumbering that makes the two paths produce
// bitwise-identical graphs. Not part of the public planner API.

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "graph/storage.h"
#include "planner/extractor.h"
#include "planner/typed_maps.h"
#include "query/executor.h"

namespace graphgen::planner {

// Serial assembly loops only pay the strided deadline/cancel poll when
// the context can actually fire.
inline bool NeedsCtxPoll(const ExecContext& ctx) {
  return ctx.cancel.cancellable() || ctx.has_deadline;
}

// Output of one executed extraction query, under either engine.
struct ExecOutput {
  Status status = Status::OK();
  std::optional<query::RowIdResult> columnar;
  std::optional<query::ResultSet> rows;

  query::RowsView View() const {
    return columnar.has_value() ? query::RowsView(&*columnar)
                                : query::RowsView(&*rows);
  }
  size_t NumRows() const {
    if (columnar.has_value()) return columnar->NumRows();
    return rows.has_value() ? rows->NumRows() : 0;
  }
};

// One endpoint column of an executed query result, read without Value
// construction whenever the storage is typed: raw int64 keys or raw
// dictionary codes for the columnar engine, per-row Values only for mixed
// columns and the row-at-a-time oracle.
class EndpointColumn {
 public:
  enum class Kind { kInt64, kDict, kValue };

  EndpointColumn(const ExecOutput& out, size_t col)
      : view_(out.View()), col_(col) {
    if (out.columnar.has_value()) {
      cr_ = &*out.columnar;
      b_ = cr_->Bind(col);
      switch (b_.col->encoding()) {
        case rel::ColumnVector::Encoding::kInt64:
          kind_ = Kind::kInt64;
          break;
        case rel::ColumnVector::Encoding::kDictString:
          kind_ = Kind::kDict;
          break;
        default:
          kind_ = Kind::kValue;
          break;
      }
    }
  }

  Kind kind() const { return kind_; }

  bool IsNull(size_t row) const {
    if (cr_ == nullptr) return view_.IsNullAt(row, col_);
    return b_.col->encoding() == rel::ColumnVector::Encoding::kEmpty ||
           b_.col->IsNull(cr_->RowId(b_, row));
  }
  int64_t Int64(size_t row) const {
    return b_.col->Int64At(cr_->RowId(b_, row));
  }
  uint32_t Code(size_t row) const {
    return b_.col->CodeAt(cr_->RowId(b_, row));
  }
  const rel::StringDictionary& dict() const { return b_.col->dict(); }
  rel::Value ValueAt(size_t row) const { return view_.ValueAt(row, col_); }

 private:
  query::RowsView view_;
  const query::RowIdResult* cr_ = nullptr;
  query::BoundColumn b_{};
  Kind kind_ = Kind::kValue;
  size_t col_ = 0;
};

// Resolves endpoint keys of one result column against a const TypedIdMap
// (the real-node table). Dictionary columns memoize the answer per code —
// one string probe per *distinct* value, raw array reads per row; int64
// columns probe the flat table directly. Rows must be non-NULL.
class RealNodeResolver {
 public:
  RealNodeResolver(const EndpointColumn& col, const TypedIdMap& ids)
      : col_(col), ids_(ids) {
    if (col_.kind() == EndpointColumn::Kind::kDict) {
      code_cache_.assign(col_.dict().size(), kUnresolved);
    }
  }

  // True with *id set when the key binds a real node; false when dangling.
  bool Resolve(size_t row, NodeId* id) {
    switch (col_.kind()) {
      case EndpointColumn::Kind::kInt64: {
        const uint32_t f = ids_.ints.Find(col_.Int64(row));
        if (f == FlatInt64Map::kNotFound) return false;
        *id = f;
        return true;
      }
      case EndpointColumn::Kind::kDict: {
        int64_t& c = code_cache_[col_.Code(row)];
        if (c == kUnresolved) {
          std::optional<uint32_t> f =
              ids_.FindString(col_.dict().At(col_.Code(row)));
          c = f.has_value() ? static_cast<int64_t>(*f) : kDangling;
        }
        if (c < 0) return false;
        *id = static_cast<NodeId>(c);
        return true;
      }
      case EndpointColumn::Kind::kValue: {
        std::optional<uint32_t> f = ids_.FindValue(col_.ValueAt(row));
        if (!f.has_value()) return false;
        *id = *f;
        return true;
      }
    }
    return false;
  }

 private:
  static constexpr int64_t kUnresolved = -2;
  static constexpr int64_t kDangling = -1;

  EndpointColumn col_;
  const TypedIdMap& ids_;
  std::vector<int64_t> code_cache_;  // dict code → node id / kDangling
};

// Resolves boundary keys of one result column to virtual-node ids,
// allocating on first sight. Allocation order is irrelevant to the final
// graph: after assembly the extractor renumbers every virtual node into
// canonical key-sorted order (CanonicalizeVirtualNodes), which is what
// makes a delta-patched graph bitwise identical to a fresh extraction.
// Rows must be non-NULL.
class VirtualNodeResolver {
 public:
  VirtualNodeResolver(const EndpointColumn& col, TypedIdMap& keys,
                      CondensedStorage& storage)
      : col_(col), keys_(keys), storage_(storage) {
    if (col_.kind() == EndpointColumn::Kind::kDict) {
      code_cache_.assign(col_.dict().size(), kUnresolved);
    }
  }

  NodeRef Resolve(size_t row) {
    switch (col_.kind()) {
      case EndpointColumn::Kind::kInt64:
        return NodeRef::Virtual(keys_.ints.GetOrInsert(
            col_.Int64(row), [this] { return storage_.AddVirtualNode(); }));
      case EndpointColumn::Kind::kDict: {
        int64_t& c = code_cache_[col_.Code(row)];
        if (c < 0) {
          const std::string& s = col_.dict().At(col_.Code(row));
          auto it = keys_.strings.find(std::string_view(s));
          if (it == keys_.strings.end()) {
            it = keys_.strings.emplace(s, storage_.AddVirtualNode()).first;
          }
          c = it->second;
        }
        return NodeRef::Virtual(static_cast<uint32_t>(c));
      }
      case EndpointColumn::Kind::kValue:
      default:
        return NodeRef::Virtual(keys_.GetOrInsertValue(
            col_.ValueAt(row), [this] { return storage_.AddVirtualNode(); }));
    }
  }

 private:
  static constexpr int64_t kUnresolved = -1;

  EndpointColumn col_;
  TypedIdMap& keys_;
  CondensedStorage& storage_;
  std::vector<int64_t> code_cache_;  // dict code → virtual id
};

// Packed (from, to) condensed edge, the key of the per-(rule, segment)
// emitted-pair sets that deduplicate delta emissions against the basis.
inline uint64_t PackPair(NodeRef from, NodeRef to) {
  return (static_cast<uint64_t>(from.raw()) << 32) | to.raw();
}

// Applies a virtual-node permutation to one packed NodeRef raw value.
inline uint32_t RemapRaw(uint32_t raw, const std::vector<uint32_t>& perm) {
  if ((raw & NodeRef::kVirtualBit) == 0) return raw;
  return perm[raw & ~NodeRef::kVirtualBit] | NodeRef::kVirtualBit;
}

// Injective, type-tagged encoding of one projected result tuple. The
// incremental node path uses it to decide whether a delta row is a tuple
// the basis extraction already applied (same DISTINCT semantics as the
// fresh path: Value equality never crosses int64/double/string; doubles
// encode their bit pattern so no two distinct values collide).
inline std::string EncodeNodeTuple(const query::RowsView& rows, size_t ri,
                                   size_t ncols) {
  auto append64 = [](std::string& s, uint64_t bits) {
    for (int b = 0; b < 8; ++b) {
      s.push_back(static_cast<char>((bits >> (b * 8)) & 0xff));
    }
  };
  std::string s;
  for (size_t c = 0; c < ncols; ++c) {
    if (rows.IsNullAt(ri, c)) {
      s.push_back('\0');
      continue;
    }
    const rel::Value v = rows.ValueAt(ri, c);
    switch (v.type()) {
      case rel::ValueType::kInt64:
        s.push_back('i');
        append64(s, static_cast<uint64_t>(v.AsInt64()));
        break;
      case rel::ValueType::kDouble: {
        s.push_back('d');
        uint64_t bits = 0;
        const double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        append64(s, bits);
        break;
      }
      case rel::ValueType::kString: {
        const std::string& str = v.AsString();
        s.push_back('s');
        append64(s, str.size());
        s.append(str);
        break;
      }
      default:
        s.push_back('\0');
        break;
    }
  }
  return s;
}

// Executes every plan, independent queries concurrently (see extractor.cc
// for the threading contract). Results land at the plan's index so callers
// consume them in deterministic order.
std::vector<ExecOutput> RunPlans(
    const rel::Database& db, const std::vector<const query::PlanNode*>& plans,
    const ExtractOptions& options,
    const std::vector<obs::ProfileNode*>* profs = nullptr);

// Translates one Nodes rule into its DISTINCT projection plan, optionally
// with the key scan ranged to [row_begin, row_end) (the delta-scan mode).
Result<std::unique_ptr<query::PlanNode>> BuildNodesPlan(const dsl::Rule& rule,
                                                        size_t row_begin = 0,
                                                        size_t row_end =
                                                            SIZE_MAX);

// One boundary's key→virtual-id map, tagged with its canonical position:
// key = (edge rule index << 32) | boundary atom index.
struct BoundaryMapRef {
  uint64_t key = 0;
  TypedIdMap* map = nullptr;
};

// Renumbers the storage's virtual nodes into canonical order — maps sorted
// by (rule, boundary), keys within a map sorted ints-numeric, then strings
// lexicographic, then other Values by operator< — rewrites the maps' ids
// in place, and sorts all adjacency lists. Returns the applied permutation
// (old id → new id) so callers can remap any packed-pair bookkeeping.
// Both the fresh and the patched pipeline end with this pass; it is the
// reason emission and allocation order never show in the final graph.
std::vector<uint32_t> CanonicalizeVirtualNodes(CondensedStorage& storage,
                                               std::vector<BoundaryMapRef>
                                                   maps);

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_EXTRACTOR_INTERNAL_H_
