#ifndef GRAPHGEN_PLANNER_EXTRACTOR_H_
#define GRAPHGEN_PLANNER_EXTRACTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "graph/storage.h"
#include "obs/profile.h"
#include "query/executor.h"
#include "relational/database.h"

namespace graphgen {
class ThreadPool;
}

namespace graphgen::planner {

/// Extraction tuning knobs.
struct ExtractOptions {
  /// The constant in the large-output test (2.0 in the paper, §4.2).
  /// <= 0 forces every join boundary large (always condense).
  double large_output_factor = 2.0;
  /// Run the §4.2 Step 6 preprocessing pass (expand tiny virtual nodes).
  bool preprocess = true;
  /// Worker threads for the pipeline — intra-query parallelism (scans,
  /// partitioned joins, DISTINCT) and preprocessing. 0 = hardware
  /// default, 1 = fully serial. Extraction output is identical for every
  /// value.
  size_t threads = 0;
  /// Query engine: the parallel columnar pipeline (default) or the legacy
  /// row-at-a-time interpreter kept as the correctness/benchmark baseline.
  query::ExecEngine engine = query::ExecEngine::kColumnar;
  /// Optional shared worker pool for inter-rule parallelism (independent
  /// Nodes/Edges rules execute their queries concurrently). Not owned;
  /// typically the graph service's pool. When null and threads != 1, the
  /// extractor fans rules out on scoped threads instead.
  ThreadPool* pool = nullptr;
  /// Semi-join pushdown of the Nodes filter: edge-rule scans that bind
  /// ID1/ID2 drop rows whose key is not a real node *inside the query*
  /// instead of during graph assembly. Never changes the extracted graph
  /// (the parity suite covers it); it shrinks join/DISTINCT inputs when
  /// the Nodes rules are selective. rows_scanned shrinks accordingly.
  bool semi_join_pushdown = false;
  /// Fuse DISTINCT projections into the hash join beneath them on the
  /// columnar engine (morsel-driven probe → first-occurrence set, no
  /// intermediate tuple materialization). Output is identical either way;
  /// off exposes the unfused operator chain for parity tests and benches.
  bool fuse_join_distinct = true;
  /// Minimum estimated join output size (bytes of row-id tuples) before
  /// the fused pipeline engages; smaller outputs materialize and run the
  /// classic cache-resident DISTINCT. 0 forces fusion for any size
  /// (tests exercise the morsel path on small data that way). See
  /// query::ExecOptions::fuse_min_output_bytes.
  size_t fuse_min_output_bytes = size_t{32} << 20;
  /// Request lifecycle context threaded into every executed query and
  /// checked at rule/assembly stage boundaries: cooperative cancel flag,
  /// absolute deadline, and per-request transient-memory budget. A
  /// cancelled, expired, or over-budget extraction unwinds with
  /// Cancelled / DeadlineExceeded / ResourceExhausted in bounded time.
  /// The default context is inert and costs nothing measurable.
  ExecContext ctx;
};

/// What Extract produces: the condensed (possibly duplicated) graph plus
/// bookkeeping that the benchmark harness reports (Table 1 columns).
struct ExtractionResult {
  CondensedStorage storage;
  /// SQL issued to the database, one entry per executed query (Fig. 16).
  std::vector<std::string> sql;
  uint64_t rows_scanned = 0;
  uint64_t condensed_edges = 0;
  size_t virtual_nodes = 0;
  size_t real_nodes = 0;
  double nodes_seconds = 0.0;
  double edges_seconds = 0.0;
  double preprocess_seconds = 0.0;
  /// Per-stage flight record (EXPLAIN ANALYZE tree): the nodes/edges
  /// query subtrees the executor fills, planning, assembly, and
  /// virtual-node expansion. Empty when observability is disabled.
  obs::QueryProfile profile;
};

/// Runs the full §4.2 pipeline for a validated program: executes the
/// Nodes queries, analyzes each Edges rule, executes the per-segment SQL
/// (independent rules concurrently, each query on the parallel columnar
/// engine), materializes virtual nodes for the postponed large-output
/// joins, and optionally preprocesses. Graph assembly applies query
/// results serially in rule order, so the result is deterministic —
/// bitwise-identical for every thread count and engine.
Result<ExtractionResult> Extract(const rel::Database& db,
                                 const dsl::Program& program,
                                 const ExtractOptions& options = {});

/// Convenience: parse + validate + extract. When `capture` is non-null
/// the run also records the incremental-extraction state (see
/// incremental.h) so later table appends can be delta-patched in.
struct IncrementalState;
Result<ExtractionResult> ExtractFromQuery(const rel::Database& db,
                                          std::string_view datalog,
                                          const ExtractOptions& options = {},
                                          IncrementalState* capture = nullptr);

/// Exact structural comparison of two extraction results (adjacency in
/// stored order, virtual nodes, properties, external keys). Returns ""
/// when identical, else a description of the first difference. The
/// parity suite and bench gate use this to prove the parallel pipeline
/// reproduces the serial output bit for bit. `compare_scan_counts`
/// disables the rows_scanned check — semi-join pushdown legitimately
/// scans fewer rows while producing the identical graph.
std::string DiffExtraction(const ExtractionResult& a,
                           const ExtractionResult& b,
                           bool compare_scan_counts = true);

}  // namespace graphgen::planner

#endif  // GRAPHGEN_PLANNER_EXTRACTOR_H_
