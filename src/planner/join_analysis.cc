#include "planner/join_analysis.h"

#include <algorithm>
#include <optional>
#include <set>

namespace graphgen::planner {

namespace {

// Returns the column index where `var` appears in `atom`, if any.
std::optional<size_t> FindVar(const dsl::Atom& atom, const std::string& var) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (atom.args[i].kind == dsl::Term::Kind::kVariable &&
        atom.args[i].variable == var) {
      return i;
    }
  }
  return std::nullopt;
}

// Variables shared between two atoms.
std::vector<std::string> SharedVars(const dsl::Atom& a, const dsl::Atom& b) {
  std::vector<std::string> shared;
  for (const dsl::Term& ta : a.args) {
    if (ta.kind != dsl::Term::Kind::kVariable) continue;
    if (FindVar(b, ta.variable).has_value()) shared.push_back(ta.variable);
  }
  std::sort(shared.begin(), shared.end());
  shared.erase(std::unique(shared.begin(), shared.end()), shared.end());
  return shared;
}

// DFS for a simple path visiting all atoms from `start` to `end`.
bool FindHamiltonianPath(const std::vector<const dsl::Atom*>& atoms,
                         const std::vector<std::vector<bool>>& adj,
                         size_t current, size_t end,
                         std::vector<bool>& used, std::vector<size_t>& path) {
  if (path.size() == atoms.size()) return current == end;
  for (size_t next = 0; next < atoms.size(); ++next) {
    if (used[next] || !adj[current][next]) continue;
    used[next] = true;
    path.push_back(next);
    if (FindHamiltonianPath(atoms, adj, next, end, used, path)) return true;
    path.pop_back();
    used[next] = false;
  }
  return false;
}

query::CompareOp ToCompareOp(dsl::PredOp op) {
  switch (op) {
    case dsl::PredOp::kEq: return query::CompareOp::kEq;
    case dsl::PredOp::kNe: return query::CompareOp::kNe;
    case dsl::PredOp::kLt: return query::CompareOp::kLt;
    case dsl::PredOp::kLe: return query::CompareOp::kLe;
    case dsl::PredOp::kGt: return query::CompareOp::kGt;
    case dsl::PredOp::kGe: return query::CompareOp::kGe;
  }
  return query::CompareOp::kEq;
}

}  // namespace

Result<JoinChain> AnalyzeEdgesRule(const dsl::Rule& rule,
                                   const rel::Database& db,
                                   double large_output_factor) {
  if (rule.kind != dsl::Rule::Kind::kEdges || rule.head_args.size() < 2) {
    return Status::PlanError("AnalyzeEdgesRule requires an Edges rule");
  }
  const std::string& id1 = rule.head_args[0];
  const std::string& id2 = rule.head_args[1];
  const size_t n = rule.body.size();

  std::vector<const dsl::Atom*> atoms;
  atoms.reserve(n);
  for (const dsl::Atom& a : rule.body) atoms.push_back(&a);

  // Locate the atoms binding ID1 and ID2.
  size_t start = n;
  size_t end = n;
  for (size_t i = 0; i < n; ++i) {
    if (start == n && FindVar(*atoms[i], id1).has_value()) start = i;
  }
  // Prefer a different atom for ID2 (self-join chains like [Q1] bind the
  // IDs in distinct atoms of the same relation).
  for (size_t i = 0; i < n; ++i) {
    if (i != start && FindVar(*atoms[i], id2).has_value()) end = i;
  }
  if (end == n && FindVar(*atoms[start], id2).has_value()) end = start;
  if (start == n || end == n) {
    return Status::PlanError("Edges rule does not bind both head IDs");
  }

  // Order atoms into a chain.
  std::vector<size_t> path = {start};
  if (n > 1) {
    if (start == end) {
      return Status::Unsupported(
          "Edges rules with both IDs in one atom plus extra join atoms are "
          "not supported (non-chain query)");
    }
    std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (!SharedVars(*atoms[i], *atoms[j]).empty()) {
          adj[i][j] = adj[j][i] = true;
        }
      }
    }
    std::vector<bool> used(n, false);
    used[start] = true;
    if (!FindHamiltonianPath(atoms, adj, start, end, used, path)) {
      return Status::Unsupported(
          "Edges rule body cannot be ordered into an acyclic join chain "
          "(Case 2 of §3.3 — cyclic or branching queries are future work)");
    }
  }

  JoinChain chain;
  chain.atoms.resize(path.size());
  for (size_t i = 0; i < path.size(); ++i) {
    chain.atoms[i].atom = atoms[path[i]];
  }

  // Join variables between consecutive atoms (must be unique).
  std::vector<std::string> join_vars;
  for (size_t i = 0; i + 1 < chain.atoms.size(); ++i) {
    std::vector<std::string> shared =
        SharedVars(*chain.atoms[i].atom, *chain.atoms[i + 1].atom);
    // The head IDs never act as join attributes in a chain.
    shared.erase(std::remove(shared.begin(), shared.end(), id1), shared.end());
    shared.erase(std::remove(shared.begin(), shared.end(), id2), shared.end());
    if (shared.size() != 1) {
      return Status::Unsupported(
          "expected exactly one join variable between " +
          chain.atoms[i].atom->relation + " and " +
          chain.atoms[i + 1].atom->relation + ", found " +
          std::to_string(shared.size()) +
          " (multi-attribute joins are not supported)");
    }
    join_vars.push_back(shared[0]);
  }

  // in/out columns per atom.
  for (size_t i = 0; i < chain.atoms.size(); ++i) {
    ChainAtom& ca = chain.atoms[i];
    const std::string& in_var = i == 0 ? id1 : join_vars[i - 1];
    const std::string& out_var =
        i + 1 == chain.atoms.size() ? id2 : join_vars[i];
    auto in_col = FindVar(*ca.atom, in_var);
    auto out_col = FindVar(*ca.atom, out_var);
    if (!in_col.has_value() || !out_col.has_value()) {
      return Status::PlanError("chain variable lookup failed for atom " +
                               ca.atom->relation);
    }
    ca.in_col = *in_col;
    ca.out_col = *out_col;
    // Constant arguments become selection predicates.
    for (size_t c = 0; c < ca.atom->args.size(); ++c) {
      if (ca.atom->args[c].kind == dsl::Term::Kind::kConstant) {
        ca.predicates.push_back(
            {c, query::CompareOp::kEq, ca.atom->args[c].constant});
      }
    }
    // Comparisons on variables bound in this atom.
    for (const dsl::Comparison& cmp : rule.comparisons) {
      if (cmp.rhs_is_var) {
        // Var-var comparisons other than ID1 != ID2 are unsupported; that
        // one is implied (self edges are never logical edges).
        bool is_id_pair = (cmp.lhs_var == id1 && cmp.rhs_var == id2) ||
                          (cmp.lhs_var == id2 && cmp.rhs_var == id1);
        if (!is_id_pair || cmp.op != dsl::PredOp::kNe) {
          return Status::Unsupported(
              "variable-variable comparisons other than ID1 != ID2 are not "
              "supported");
        }
        continue;
      }
      auto col = FindVar(*ca.atom, cmp.lhs_var);
      if (col.has_value()) {
        ca.predicates.push_back({*col, ToCompareOp(cmp.op), cmp.rhs_const});
      }
    }
  }

  // Selectivity analysis per boundary (§4.2 Step 2).
  chain.boundaries.resize(join_vars.size());
  for (size_t i = 0; i < join_vars.size(); ++i) {
    JoinBoundary& b = chain.boundaries[i];
    b.variable = join_vars[i];
    const ChainAtom& left = chain.atoms[i];
    const ChainAtom& right = chain.atoms[i + 1];
    GRAPHGEN_ASSIGN_OR_RETURN(rel::TableStats lstats,
                              db.catalog().GetStats(left.atom->relation));
    GRAPHGEN_ASSIGN_OR_RETURN(rel::TableStats rstats,
                              db.catalog().GetStats(right.atom->relation));
    b.left_rows = lstats.row_count;
    b.right_rows = rstats.row_count;
    uint64_t d_left = lstats.columns[left.out_col].n_distinct;
    uint64_t d_right = rstats.columns[right.in_col].n_distinct;
    b.distinct_values = std::max<uint64_t>(1, std::max(d_left, d_right));
    b.estimated_output = static_cast<double>(b.left_rows) *
                         static_cast<double>(b.right_rows) /
                         static_cast<double>(b.distinct_values);
    if (large_output_factor <= 0.0) {
      b.large_output = true;
    } else {
      b.large_output =
          b.estimated_output >
          large_output_factor * static_cast<double>(b.left_rows + b.right_rows);
    }
  }
  return chain;
}

}  // namespace graphgen::planner
