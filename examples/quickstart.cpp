// Quickstart: build a tiny bibliographic database in code, declare the
// co-authors graph in the Datalog DSL, extract it, and run analytics —
// the end-to-end flow of Figure 1 of the paper.

#include <cstdio>

#include "algos/degree.h"
#include "algos/pagerank.h"
#include "core/graphgen.h"

using namespace graphgen;

int main() {
  // 1. A relational database with authors, and author-publication facts.
  rel::Database db;
  {
    rel::Table authors(
        "Author", rel::Schema({{"id", rel::ValueType::kInt64},
                               {"name", rel::ValueType::kString}}));
    const char* names[] = {"ann", "bob", "carol", "dave", "erin"};
    for (int64_t i = 0; i < 5; ++i) {
      authors.AppendUnchecked({rel::Value(i), rel::Value(names[i])});
    }
    db.PutTable(std::move(authors));

    rel::Table ap("AuthorPub",
                  rel::Schema({{"aid", rel::ValueType::kInt64},
                               {"pid", rel::ValueType::kInt64}}));
    // p1 = {ann, bob, carol, dave}, p2 = {ann, carol, dave}, p3 = {dave,
    // erin}: ann–dave are co-authors through two papers (duplication!).
    for (int64_t a : {0, 1, 2, 3}) ap.AppendUnchecked({rel::Value(a), rel::Value(int64_t{1})});
    for (int64_t a : {0, 2, 3}) ap.AppendUnchecked({rel::Value(a), rel::Value(int64_t{2})});
    for (int64_t a : {3, 4}) ap.AppendUnchecked({rel::Value(a), rel::Value(int64_t{3})});
    db.PutTable(std::move(ap));
  }

  // 2. Declare the hidden graph: authors are nodes, co-authorship edges.
  const char* query =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

  // 3. Extract. Force the condensed representation so the virtual nodes
  //    (one per publication) are visible in the stats.
  GraphGen engine(&db);
  GraphGenOptions options;
  options.representation = Representation::kCDup;
  options.extract.large_output_factor = 0.0;
  options.extract.preprocess = false;
  auto extracted = engine.Extract(query, options);
  if (!extracted.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 extracted.status().ToString().c_str());
    return 1;
  }

  const Graph& graph = *extracted->graph;
  std::printf("Extracted %zu authors, %zu virtual nodes, %llu condensed edges\n",
              graph.NumActiveVertices(), graph.NumVirtualNodes(),
              static_cast<unsigned long long>(graph.CountStoredEdges()));
  for (const std::string& sql : extracted->stats.sql) {
    std::printf("  SQL> %s\n", sql.c_str());
  }

  // 4. Analyze with the Graph API and the algorithm library.
  std::printf("\nCo-author lists (via getNeighbors iterators):\n");
  graph.ForEachVertex([&](NodeId u) {
    std::printf("  author %u:", u);
    auto it = graph.Neighbors(u);
    while (it->HasNext()) std::printf(" %u", it->Next());
    std::printf("\n");
  });

  std::vector<uint64_t> degrees = ComputeDegrees(graph);
  std::vector<double> ranks = PageRank(graph, {.iterations = 20});
  std::printf("\nDegree / PageRank:\n");
  for (NodeId u = 0; u < graph.NumVertices(); ++u) {
    std::printf("  author %u: degree %llu, rank %.4f\n", u,
                static_cast<unsigned long long>(degrees[u]), ranks[u]);
  }
  std::printf("\n(dave bridges the two collaboration groups: highest rank)\n");
  return 0;
}
