// The paper's [Q3]: a heterogeneous bipartite graph between instructors
// and the students who took their courses, extracted from a university
// schema (db-book.com style). Shows multiple Nodes statements, a directed
// bipartite condensed graph, and mutation through the Graph API.

#include <cstdio>

#include "algos/degree.h"
#include "core/graphgen.h"
#include "gen/relational_generators.h"

using namespace graphgen;

int main() {
  gen::GeneratedDatabase data =
      gen::MakeUniversity(/*num_students=*/400, /*num_instructors=*/12,
                          /*num_courses=*/40, /*courses_per_student=*/3.5, 99);

  const char* q3 =
      "Nodes(ID, Name) :- Instructor(ID, Name).\n"
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).";
  std::printf("Query [Q3]:\n%s\n\n", q3);

  GraphGen engine(&data.db);
  GraphGenOptions options;
  options.representation = Representation::kCDup;
  options.extract.large_output_factor = 0.0;  // courses as virtual nodes
  options.extract.preprocess = false;
  auto extracted = engine.Extract(q3, options);
  if (!extracted.ok()) {
    std::fprintf(stderr, "failed: %s\n", extracted.status().ToString().c_str());
    return 1;
  }
  Graph& g = *extracted->graph;

  // Instructors were declared first, so they occupy ids [0, 12).
  std::printf("Bipartite graph: %zu vertices, %zu course virtual nodes\n",
              g.NumActiveVertices(), g.NumVirtualNodes());
  std::vector<uint64_t> degrees = ComputeDegrees(g);
  std::printf("\nTeaching reach (students taught, deduplicated across "
              "courses):\n");
  for (NodeId i = 0; i < 12; ++i) {
    std::printf("  instructor %2u -> %llu students\n", i,
                static_cast<unsigned long long>(degrees[i]));
  }

  // Mutate: instructor 0 goes on sabbatical — remove them from the graph
  // (lazy deletion, §3.4) and re-count.
  if (g.DeleteVertex(0).ok()) {
    std::printf("\nAfter deleting instructor 0 (lazy): %zu active vertices\n",
                g.NumActiveVertices());
  }

  // Direction check: students have no out-edges in this graph.
  uint64_t student_out = 0;
  g.ForEachVertex([&](NodeId u) {
    if (u >= 12) student_out += g.OutDegree(u);
  });
  std::printf("Total student out-degree (expected 0): %llu\n",
              static_cast<unsigned long long>(student_out));
  return 0;
}
