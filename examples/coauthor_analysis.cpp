// Co-authorship analytics at scale: generate a DBLP-like database, compare
// the representations GraphGen can hand back, and run a small analysis
// (top collaborators by PageRank, community count) on the condensed graph
// without ever materializing the expanded co-author graph.

#include <algorithm>
#include <cstdio>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "common/memory.h"
#include "common/timer.h"
#include "core/graphgen.h"
#include "gen/relational_generators.h"

using namespace graphgen;

int main() {
  // A DBLP-shaped database: prolific authors are Zipf-skewed, ~4 authors
  // per paper.
  gen::GeneratedDatabase data = gen::MakeDblpLike(4000, 8000, 4.0, 2024);
  std::printf("Database: %s\n", data.description.c_str());
  std::printf("Query:\n%s\n", data.datalog.c_str());

  GraphGen engine(&data.db);
  for (Representation r : {Representation::kCDup, Representation::kBitmap2,
                           Representation::kDedup1, Representation::kExp}) {
    GraphGenOptions options;
    options.representation = r;
    options.extract.large_output_factor = 0.0;  // keep it condensed
    WallTimer timer;
    auto extracted = engine.Extract(data.datalog, options);
    if (!extracted.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", RepresentationToString(r).data(),
                   extracted.status().ToString().c_str());
      continue;
    }
    std::printf("%-9s built in %7.1fms: %8llu stored edges, %s\n",
                RepresentationToString(r).data(), timer.Millis(),
                static_cast<unsigned long long>(
                    extracted->graph->CountStoredEdges()),
                FormatBytes(extracted->graph->MemoryBytes()).c_str());
  }

  // Analyze on BITMAP-2 (the §6.5 recommendation for multi-pass algorithms).
  GraphGenOptions options;
  options.representation = Representation::kBitmap2;
  options.extract.large_output_factor = 0.0;
  auto extracted = engine.Extract(data.datalog, options);
  if (!extracted.ok()) return 1;
  const Graph& g = *extracted->graph;

  std::vector<double> ranks = PageRank(g, {.iterations = 15});
  std::vector<NodeId> order(g.NumVertices());
  for (NodeId u = 0; u < order.size(); ++u) order[u] = u;
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return ranks[a] > ranks[b]; });
  std::printf("\nTop-5 authors by PageRank (collaboration hubs):\n");
  const PropertyTable& props = extracted->stats.storage.properties();
  (void)props;  // properties live inside the graph after materialization
  for (size_t i = 0; i < 5 && i < order.size(); ++i) {
    std::printf("  author #%u  rank %.5f  degree %zu\n", order[i],
                ranks[order[i]], g.OutDegree(order[i]));
  }

  std::vector<NodeId> labels = ConnectedComponents(g);
  std::printf("\nCollaboration communities (connected components): %zu\n",
              CountComponents(labels));
  return 0;
}
