// Temporal graph analytics (paper §1: "it is often interesting to
// juxtapose and compare graphs constructed over different time periods").
// Extracts two co-author graphs from the same database — an early era and
// a recent era — using selection predicates in the DSL, and compares
// their structure.

#include <cstdio>

#include "algos/clustering.h"
#include "algos/connected_components.h"
#include "algos/degree.h"
#include "common/rng.h"
#include "core/graphgen.h"

using namespace graphgen;

namespace {

rel::Database MakeTemporalDblp() {
  Rng rng(2026);
  rel::Database db;
  const int64_t num_authors = 600;
  const int64_t num_pubs = 1600;

  rel::Table authors("Author", rel::Schema({{"id", rel::ValueType::kInt64},
                                            {"name", rel::ValueType::kString}}));
  for (int64_t a = 0; a < num_authors; ++a) {
    authors.AppendUnchecked({rel::Value(a), rel::Value("author_" + std::to_string(a))});
  }
  db.PutTable(std::move(authors));

  // AuthorPub(aid, pid, year): the field grows over time — later papers
  // draw from a larger author pool, earlier ones from a small core.
  rel::Table ap("AuthorPub", rel::Schema({{"aid", rel::ValueType::kInt64},
                                          {"pid", rel::ValueType::kInt64},
                                          {"year", rel::ValueType::kInt64}}));
  for (int64_t p = 0; p < num_pubs; ++p) {
    int64_t year = 2000 + static_cast<int64_t>(rng.NextBounded(26));
    int64_t pool = 100 + (year - 2000) * 20;  // community growth
    size_t team = 2 + rng.NextBounded(4);
    for (size_t i = 0; i < team; ++i) {
      int64_t a = static_cast<int64_t>(rng.NextBounded(
          static_cast<uint64_t>(std::min(pool, num_authors))));
      ap.AppendUnchecked({rel::Value(a), rel::Value(p), rel::Value(year)});
    }
  }
  db.PutTable(std::move(ap));
  return db;
}

void Analyze(const GraphGen& engine, const char* label, const char* query) {
  GraphGenOptions options;
  options.representation = Representation::kBitmap2;
  options.extract.large_output_factor = 0.0;
  auto extracted = engine.Extract(query, options);
  if (!extracted.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 extracted.status().ToString().c_str());
    return;
  }
  const Graph& g = *extracted->graph;
  std::vector<uint64_t> degrees = ComputeDegrees(g);
  uint64_t active = 0;
  uint64_t edge_endpoints = 0;
  for (uint64_t d : degrees) {
    if (d > 0) ++active;
    edge_endpoints += d;
  }
  auto labels = ConnectedComponents(g);
  // Count only components with >= 2 members.
  std::vector<int> sizes(g.NumVertices(), 0);
  for (NodeId l : labels) {
    if (l != kInvalidNode) ++sizes[l];
  }
  size_t real_components = 0;
  size_t largest = 0;
  for (NodeId l = 0; l < sizes.size(); ++l) {
    if (sizes[l] >= 2) {
      ++real_components;
      largest = std::max(largest, static_cast<size_t>(sizes[l]));
    }
  }
  std::printf(
      "%-18s %5llu active authors, avg degree %5.1f, %3zu communities, "
      "largest %4zu, clustering %.3f\n",
      label, static_cast<unsigned long long>(active),
      active ? static_cast<double>(edge_endpoints) / static_cast<double>(active)
             : 0.0,
      real_components, largest, AverageClusteringCoefficient(g));
}

}  // namespace

int main() {
  rel::Database db = MakeTemporalDblp();
  GraphGen engine(&db);

  std::printf("Era comparison of the co-author graph (same database, two "
              "extraction queries):\n\n");
  Analyze(engine, "2000-2012:",
          "Nodes(ID, Name) :- Author(ID, Name).\n"
          "Edges(ID1, ID2) :- AuthorPub(ID1, P, Y), AuthorPub(ID2, P, Y2), "
          "Y <= 2012, Y2 <= 2012.");
  Analyze(engine, "2013-2025:",
          "Nodes(ID, Name) :- Author(ID, Name).\n"
          "Edges(ID1, ID2) :- AuthorPub(ID1, P, Y), AuthorPub(ID2, P, Y2), "
          "Y >= 2013, Y2 >= 2013.");
  Analyze(engine, "all years:",
          "Nodes(ID, Name) :- Author(ID, Name).\n"
          "Edges(ID1, ID2) :- AuthorPub(ID1, P, Y), AuthorPub(ID2, P, Y2).");

  std::printf(
      "\nThe early era is a small dense core; the recent era has more\n"
      "authors. Both views were extracted declaratively — no ETL.\n");
  return 0;
}
