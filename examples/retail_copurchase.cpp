// The Table 1 "TPCH" scenario: connect customers who bought the same
// part. The extraction chain Orders ⋈ LineItem ⋈ LineItem ⋈ Orders mixes
// key-FK joins (handed to the database) with one large-output join on the
// part key (postponed into virtual nodes) — a multi-layer condensed graph
// like Fig. 5a. The expanded co-purchase graph would be enormous; the
// condensed one is barely larger than the input tables.

#include <cstdio>

#include "algos/bfs.h"
#include "algos/connected_components.h"
#include "common/memory.h"
#include "common/timer.h"
#include "core/graphgen.h"
#include "core/serialization.h"
#include "gen/relational_generators.h"

using namespace graphgen;

int main() {
  gen::GeneratedDatabase data = gen::MakeTpchLike(
      /*num_customers=*/3000, /*num_orders=*/12000, /*num_parts=*/120,
      /*lines_per_order=*/3.0, 7);
  std::printf("Query:\n%s\n", data.datalog.c_str());

  GraphGen engine(&data.db);

  // Let the planner decide which joins are large-output from catalog
  // statistics, exactly as §4.2 describes.
  GraphGenOptions options;
  options.representation = Representation::kCDup;
  WallTimer timer;
  auto extracted = engine.Extract(data.datalog, options);
  if (!extracted.ok()) {
    std::fprintf(stderr, "failed: %s\n", extracted.status().ToString().c_str());
    return 1;
  }
  std::printf("Extraction took %.1fms; issued SQL:\n", timer.Millis());
  for (const std::string& sql : extracted->stats.sql) {
    std::printf("  %s\n", sql.c_str());
  }

  const Graph& g = *extracted->graph;
  std::printf("\nCondensed co-purchase graph: %zu customers, %zu virtual, "
              "%llu stored edges (%s)\n",
              g.NumActiveVertices(), g.NumVirtualNodes(),
              static_cast<unsigned long long>(g.CountStoredEdges()),
              FormatBytes(g.MemoryBytes()).c_str());
  std::printf("Expanded edges (never materialized): %llu\n",
              static_cast<unsigned long long>(g.CountExpandedEdges()));

  // Connected components run directly on C-DUP (duplicate-insensitive).
  std::vector<NodeId> labels = ConnectedComponents(g);
  std::printf("Market segments (components): %zu\n", CountComponents(labels));

  // How far apart are two random customers in the co-purchase graph?
  std::vector<uint32_t> dist = Bfs(g, 0);
  size_t reachable = 0;
  uint32_t max_dist = 0;
  for (uint32_t d : dist) {
    if (d != kUnreachable) {
      ++reachable;
      max_dist = std::max(max_dist, d);
    }
  }
  std::printf("Customer 0 reaches %zu customers, eccentricity %u\n",
              reachable, max_dist);

  // Hand the expanded edge list to external tooling (NetworkX-style flow).
  std::string path = "/tmp/copurchase_edges.txt";
  if (SerializeEdgeList(g, path).ok()) {
    std::printf("Expanded edge list serialized to %s\n", path.c_str());
  }
  return 0;
}
